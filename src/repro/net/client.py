"""Broker clients: the queue and store protocols over JSON/HTTP.

:class:`HttpQueue` and :class:`HttpStore` are drop-in
:class:`~repro.distributed.queue.WorkQueue` /
:class:`~repro.engine.store.ResultStore` implementations that speak the
``atcd serve`` wire protocol (:mod:`repro.net.wire`).  Everywhere the
code accepts a queue or store *path*, an ``http://host:port`` URL now
works instead — :func:`repro.distributed.open_queue` and
:func:`repro.engine.store.open_store` dispatch on the scheme.

Transport behaviour, shared by both clients:

* **Connection reuse** — one persistent ``http.client.HTTPConnection``
  per calling thread (the worker's main loop and its lease-keeper thread
  must not serialize on a socket), re-established transparently when the
  server closes it.
* **Retry with backoff** — connection-level failures (refused, reset,
  timed out) are retried with exponential backoff, so a fleet rides out
  a broker restart instead of dead-lettering its tasks.  HTTP *error
  responses* are never retried: the server answered, and answered no.
* **Errors as user errors** — an exhausted retry budget or a server-side
  rejection raises :class:`QueueError`/:class:`StoreError`, which the CLI
  reports as a one-line exit-2 message like every other bad-input case.

Retried requests are not exactly-once: a ``claim`` whose response was
lost may leave an orphan lease on the server, recovered by the normal
expiry sweep — the same guarantee as a crashed worker, and the reason
blanket retry is safe here.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time
import urllib.parse
import uuid
from typing import Any, Callable, Dict, List, Optional, Sequence, Type

from ..distributed.queue import (
    DEFAULT_MAX_ATTEMPTS,
    QueueError,
    Task,
    TaskState,
)
from ..engine.requests import AnalysisRequest, AnalysisResult
from ..engine.store import StoreError, StoreStats
from .wire import (
    AUTH_HEADER,
    SERVER_NAME,
    TOKEN_ENV_VAR,
    WIRE_VERSION,
    task_from_wire,
)

__all__ = ["BrokerAdmin", "HttpQueue", "HttpStore", "split_queue_url"]


def split_queue_url(url: str) -> tuple:
    """Split a queue URL into ``(base_url, queue_name_or_None)``.

    Two shapes are accepted: ``http://host:port`` (a broker serving one
    queue) and ``http://host:port/queues/<name>`` (one named queue under
    a ``--root`` broker).  Anything else raises :class:`QueueError`.
    """
    parsed = urllib.parse.urlsplit(url)
    base = urllib.parse.urlunsplit(
        (parsed.scheme, parsed.netloc, "", "", "")
    )
    path = parsed.path.strip("/")
    if not path and not parsed.query and not parsed.fragment:
        return base, None
    parts = path.split("/")
    if (
        len(parts) == 2 and parts[0] == "queues" and parts[1]
        and not parsed.query and not parsed.fragment
    ):
        from ..distributed.roots import validate_queue_name

        return base, validate_queue_name(parts[1])
    raise QueueError(
        f"invalid queue URL {url!r}: expected http://host:port or "
        "http://host:port/queues/<name>"
    )


class _Transport:
    """One broker endpoint: per-thread connections, retries, JSON framing."""

    def __init__(
        self,
        url: str,
        error_type: Type[ValueError],
        token: Optional[str] = None,
        timeout: float = 60.0,
        retries: int = 5,
        backoff_seconds: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._error_type = error_type
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", "https") or not parsed.hostname:
            raise error_type(f"invalid broker URL {url!r}")
        if parsed.path.strip("/") or parsed.query or parsed.fragment:
            raise error_type(
                f"invalid broker URL {url!r}: expected just http://host:port"
            )
        self.url = f"{parsed.scheme}://{parsed.netloc}"
        self._scheme = parsed.scheme
        self._host = parsed.hostname
        self._port = parsed.port or (443 if parsed.scheme == "https" else 80)
        self._token = token if token is not None else os.environ.get(TOKEN_ENV_VAR)
        self._timeout = timeout
        self._retries = retries
        self._backoff = backoff_seconds
        self._sleep = sleep
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            factory = (
                http.client.HTTPSConnection
                if self._scheme == "https"
                else http.client.HTTPConnection
            )
            connection = factory(self._host, self._port, timeout=self._timeout)
            self._local.connection = connection
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            try:
                connection.close()
            # staticcheck: allow-broad-except(already tearing down; a close failure has nothing left to corrupt)
            except Exception:  # noqa: BLE001 — already tearing down
                pass
            self._local.connection = None

    def close(self) -> None:
        self._drop_connection()

    # ------------------------------------------------------------------ #
    # requests
    # ------------------------------------------------------------------ #
    def _headers(self) -> Dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self._token is not None:
            headers[AUTH_HEADER] = f"Bearer {self._token}"
        return headers

    def _round_trip(self, method: str, path: str, body: bytes) -> tuple:
        connection = self._connection()
        connection.request(method, path, body=body, headers=self._headers())
        response = connection.getresponse()
        return response.status, response.read()

    def _attempt_loop(self, method: str, path: str, body: bytes) -> tuple:
        """Round-trip with reconnect/backoff; returns ``(status, raw)``.

        Retried: connection-level failures (the server may be restarting,
        or a kept-alive socket went stale) and 503 (the broker said it is
        shutting down and told us to come back on a fresh connection).
        Any other answer — success or rejection — is returned as-is.
        """
        last_error: Optional[Exception] = None
        for attempt in range(self._retries + 1):
            if attempt:
                self._sleep(self._backoff * (2 ** (attempt - 1)))
            try:
                status, raw = self._round_trip(method, path, body)
            except (OSError, http.client.HTTPException) as error:
                self._drop_connection()
                last_error = error
                continue
            if status == 503:
                self._drop_connection()
                last_error = self._error_type(f"broker {self.url}: HTTP 503")
                continue
            return status, raw
        raise self._error_type(
            f"broker {self.url} unreachable after {self._retries + 1} "
            f"attempts: {last_error}"
        )

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One wire call; returns the response's ``value`` document."""
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        status, raw = self._attempt_loop(method, path, body)
        return self._decode(path, status, raw)

    def _decode(self, path: str, status: int, raw: bytes) -> Any:
        try:
            document = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            document = {}
        if status == 200 and document.get("ok"):
            return document.get("value")
        message = document.get("error") or f"HTTP {status}"
        raise self._error_type(f"broker {self.url}{path}: {message}")

    def ping_raw(self) -> Dict[str, Any]:
        """The full ``GET /ping`` document (outside the value envelope)."""
        status, raw = self._attempt_loop("GET", "/ping", b"")
        try:
            document = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            document = {}
        if status != 200 or document.get("server") != SERVER_NAME:
            message = document.get("error") or f"HTTP {status}"
            raise self._error_type(
                f"{self.url} is not an atcd broker: {message}"
            )
        if document.get("wire_version") != WIRE_VERSION:
            raise self._error_type(
                f"broker {self.url} speaks wire version "
                f"{document.get('wire_version')!r}; this build speaks "
                f"{WIRE_VERSION}"
            )
        return document


class HttpQueue:
    """A :class:`~repro.distributed.queue.WorkQueue` over an atcd broker.

    Parameters
    ----------
    url:
        The broker base URL (``http://host:port``) — what ``atcd serve``
        printed on startup — or ``http://host:port/queues/<name>`` for
        one named queue under an ``atcd serve --root`` broker.
    token:
        Bearer token when the broker requires one; defaults to
        ``$ATCD_BROKER_TOKEN``.
    timeout / retries / backoff_seconds:
        Transport tuning; see the module docstring.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 60.0,
        retries: int = 5,
        backoff_seconds: float = 0.1,
    ) -> None:
        base, self.queue_name = split_queue_url(url)
        self._transport = _Transport(
            base, QueueError, token=token, timeout=timeout,
            retries=retries, backoff_seconds=backoff_seconds,
        )
        self.url = self._transport.url
        if self.queue_name is not None:
            self.url = f"{self._transport.url}/queues/{self.queue_name}"

    def _call(self, op: str, payload: Optional[Dict[str, Any]] = None) -> Any:
        if self.queue_name is not None:
            path = f"/queues/{self.queue_name}/{op}"
        else:
            path = f"/queue/{op}"
        return self._transport.request("POST", path, payload or {})

    def ping(self) -> Dict[str, Any]:
        """Verify the broker is reachable and serves the queue we name."""
        document = self._transport.ping_raw()
        if self.queue_name is not None:
            if not document.get("root"):
                raise QueueError(
                    f"broker {self._transport.url} serves no named queues; "
                    "drop the /queues/<name> path from the URL"
                )
            if self.queue_name not in document.get("queues", []):
                raise QueueError(
                    f"broker {self._transport.url} has no queue named "
                    f"{self.queue_name!r}; create it with 'atcd queue create'"
                )
        elif document.get("root"):
            raise QueueError(
                f"broker {self._transport.url} serves named queues; point at "
                f"{self._transport.url}/queues/<name> instead"
            )
        elif not document.get("queue"):
            raise QueueError(f"broker {self.url} serves no work queue")
        return document

    # ------------------------------------------------------------------ #
    # WorkQueue interface
    # ------------------------------------------------------------------ #
    def submit(
        self,
        payloads: Sequence[Dict[str, Any]],
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        dedupe_key: Optional[str] = None,
    ) -> List[str]:
        # Submit is the one non-idempotent operation blanket retry would
        # corrupt (a lost response + retry = the whole batch duplicated),
        # so every call carries a dedupe key — stable across this call's
        # retries — and the server returns the recorded ids on a replay.
        if dedupe_key is None:
            dedupe_key = uuid.uuid4().hex
        return self._call("submit", {
            "payloads": list(payloads), "max_attempts": max_attempts,
            "dedupe_key": dedupe_key,
        })["task_ids"]

    def claim(self, worker_id: str, lease_seconds: float) -> Optional[Task]:
        value = self._call("claim", {
            "worker_id": worker_id, "lease_seconds": lease_seconds,
        })["task"]
        return None if value is None else task_from_wire(value)

    def heartbeat(self, task_id: str, worker_id: str, lease_seconds: float) -> bool:
        return self._call("heartbeat", {
            "task_id": task_id, "worker_id": worker_id,
            "lease_seconds": lease_seconds,
        })["ok"]

    def complete(self, task_id: str, worker_id: str, result: Dict[str, Any]) -> bool:
        return self._call("complete", {
            "task_id": task_id, "worker_id": worker_id, "result": result,
        })["ok"]

    def fail(self, task_id: str, worker_id: str, error: str) -> bool:
        return self._call("fail", {
            "task_id": task_id, "worker_id": worker_id, "error": str(error),
        })["ok"]

    def expire_leases(self) -> int:
        return self._call("expire_leases")["released"]

    def resubmit_dead(self) -> List[str]:
        return self._call("resubmit_dead")["task_ids"]

    def cancel_pending(self, task_ids: Sequence[str]) -> List[str]:
        return self._call("cancel_pending", {
            "task_ids": list(task_ids),
        })["task_ids"]

    def prune(self, ttl_seconds: float) -> Dict[str, int]:
        return self._call("prune", {"ttl_seconds": ttl_seconds})["pruned"]

    def counts(self) -> Dict[str, int]:
        return self._call("counts")["counts"]

    def drained(self) -> bool:
        return self._call("drained")["drained"]

    def tasks(self, state: Optional[TaskState] = None) -> List[Task]:
        value = self._call("tasks", {
            "state": None if state is None else state.value,
        })["tasks"]
        return [task_from_wire(row) for row in value]

    def get_meta(self, key: str) -> Optional[str]:
        return self._call("get_meta", {"key": key})["value"]

    def set_meta(self, key: str, value: str) -> None:
        self._call("set_meta", {"key": key, "value": value})

    def set_meta_if_absent(self, key: str, value: str) -> bool:
        ok = self._call("set_meta_if_absent", {"key": key, "value": value})["ok"]
        if not ok and self.get_meta(key) == value:
            # Our own committed write, replayed after a lost response: the
            # key holds exactly the value we tried to record, so this call
            # is the one that won the check-and-set — without this, a
            # coordinator would see False, conclude "queue already holds a
            # run", and abort its own half-recorded submission.
            return True
        return ok

    def summary(self) -> Dict[str, Any]:
        summary = self._call("summary")["summary"]
        summary["url"] = self.url
        return summary

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "HttpQueue":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class HttpStore:
    """A :class:`~repro.engine.store.ResultStore` over an atcd broker.

    The poisoning guard (embedded-identity verification) runs on the
    *server's* sqlite store; this client only moves the JSON documents.
    ``stats`` counts this client's own traffic — hits, misses and writes
    as observed from here, like the in-process stores do.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 60.0,
        retries: int = 5,
        backoff_seconds: float = 0.1,
    ) -> None:
        self._transport = _Transport(
            url, StoreError, token=token, timeout=timeout,
            retries=retries, backoff_seconds=backoff_seconds,
        )
        self.url = self._transport.url
        self.stats = StoreStats()

    def _call(self, op: str, payload: Optional[Dict[str, Any]] = None) -> Any:
        return self._transport.request("POST", f"/store/{op}", payload or {})

    def ping(self) -> Dict[str, Any]:
        """Verify the broker is reachable and actually serves a store."""
        document = self._transport.ping_raw()
        if not document.get("store"):
            raise StoreError(f"broker {self.url} serves no result store")
        return document

    # ------------------------------------------------------------------ #
    # ResultStore interface
    # ------------------------------------------------------------------ #
    def get(
        self, fingerprint: str, request: AnalysisRequest
    ) -> Optional[AnalysisResult]:
        value = self._call("get", {
            "fingerprint": fingerprint, "request": request.to_dict(),
        })["result"]
        if value is None:
            self.stats.misses += 1
            return None
        try:
            result = AnalysisResult.from_dict(value)
        except (ValueError, TypeError, KeyError):
            # A response that does not parse is treated exactly like the
            # local stores treat an unusable row: rejected, never served.
            self.stats.rejected += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(
        self, fingerprint: str, request: AnalysisRequest, result: AnalysisResult
    ) -> None:
        self._call("put", {
            "fingerprint": fingerprint,
            "request": request.to_dict(),
            "result": result.to_dict(),
        })
        self.stats.writes += 1

    def prune(self, fingerprint: Optional[str] = None) -> int:
        return self._call("prune", {"fingerprint": fingerprint})["dropped"]

    def evict(
        self,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        return self._call("evict", {
            "ttl_seconds": ttl_seconds, "max_bytes": max_bytes,
        })["dropped"]

    def __len__(self) -> int:
        return self._call("len")["entries"]

    def summary(self) -> Dict[str, Any]:
        summary = self._call("summary")["summary"]
        summary["url"] = self.url
        return summary

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "HttpStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class BrokerAdmin:
    """Management client for an ``atcd serve --root`` broker.

    The ``atcd queue create|list|drop`` verbs over HTTP: thin wrappers
    around ``POST /queues/create``, ``GET /queues`` and
    ``POST /queues/drop``.
    """

    def __init__(
        self,
        url: str,
        token: Optional[str] = None,
        timeout: float = 60.0,
        retries: int = 5,
        backoff_seconds: float = 0.1,
    ) -> None:
        self._transport = _Transport(
            url, QueueError, token=token, timeout=timeout,
            retries=retries, backoff_seconds=backoff_seconds,
        )
        self.url = self._transport.url

    def ping(self) -> Dict[str, Any]:
        """Verify the broker is reachable and serves a queue root."""
        document = self._transport.ping_raw()
        if not document.get("root"):
            raise QueueError(
                f"broker {self.url} serves no queue root; start it with "
                "'atcd serve --root DIR' to host named queues"
            )
        return document

    def create_queue(self, name: str) -> bool:
        """Create the named queue; ``False`` if it already existed."""
        return self._transport.request(
            "POST", "/queues/create", {"name": name}
        )["created"]

    def list_queues(self) -> List[Dict[str, Any]]:
        """One ``{"name", "counts"}`` row per hosted queue."""
        return self._transport.request("GET", "/queues")["queues"]

    def drop_queue(self, name: str) -> bool:
        """Delete the named queue; ``False`` if it did not exist."""
        return self._transport.request(
            "POST", "/queues/drop", {"name": name}
        )["dropped"]

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "BrokerAdmin":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
