"""Structured access logging: one JSON line per served HTTP request.

Both network surfaces — the broker (``atcd serve``) and the analysis
service (``atcd api``) — log through :class:`AccessLog`.  Each request
produces exactly one line, machine-parseable and stable in shape::

    {"ts": 1718000000.123, "request_id": "a1b2c3d4e5f6", "tenant": "acme",
     "method": "POST", "route": "/v1/jobs", "status": 202, "latency_ms": 4.2}

``request_id`` is generated per request and echoed back to the client in
the ``X-Request-Id`` response header, so a client-side error report can be
joined against the server's log.  A *client-supplied* ``X-Request-Id`` is
honoured instead (when it is hex-ish enough to be one, see
:func:`repro.obs.trace.normalize_trace_id`) and doubles as a trace seed,
so log lines, response headers and exported spans all join on one id —
:func:`request_trace_seed` packages that decision for both servers.
``tenant`` is the authenticated tenant name (``null`` on the broker,
whose auth is a single shared token, and on unauthenticated/rejected
requests).  ``trace_id`` appears whenever the request ran under a trace
context, linking the access line to the span tree in ``--trace-out``.

Lines are written atomically under a lock (the servers are threaded) and
flushed immediately — an access log that loses its tail on a crash is
useless for debugging exactly the requests that mattered.
"""

from __future__ import annotations

import json
import threading
import uuid
from typing import Any, Callable, Dict, Mapping, Optional, TextIO, Tuple

from ..obs.trace import (
    TRACE_HEADER,
    TraceContext,
    new_span_id,
    normalize_trace_id,
    parse_traceparent,
)

__all__ = [
    "AccessLog",
    "REQUEST_ID_HEADER",
    "new_request_id",
    "request_trace_seed",
]

#: Response header echoing the server-assigned request id.
REQUEST_ID_HEADER = "X-Request-Id"


def new_request_id() -> str:
    """A fresh 12-hex-character request id."""
    return uuid.uuid4().hex[:12]


def request_trace_seed(
    headers: Mapping[str, str],
) -> Tuple[str, Optional[TraceContext]]:
    """The (request id, trace context) one incoming request runs under.

    ``X-Trace-Context`` (a ``<trace_id>-<span_id>`` pair from a tracing
    caller) wins; failing that, a plausible client ``X-Request-Id`` seeds
    a fresh trace so pre-tracing clients still get linked spans; failing
    both, the request gets a new id and no inherited context (handler
    spans then root their own trace).  The returned request id is what
    the server echoes back and logs.
    """
    context = parse_traceparent(headers.get(TRACE_HEADER))
    incoming = normalize_trace_id(headers.get(REQUEST_ID_HEADER))
    request_id = incoming if incoming is not None else new_request_id()
    if context is None and incoming is not None:
        context = TraceContext(trace_id=incoming, span_id=new_span_id())
    return request_id, context


class AccessLog:
    """A thread-safe JSON-lines access log over any text stream.

    The stream is borrowed, not owned: closing stdout/stderr (or a file
    the CLI opened and will close itself) is the caller's business.
    """

    def __init__(
        self,
        stream: TextIO,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        import time

        self._stream = stream
        self._clock = clock or time.time
        self._lock = threading.Lock()

    def record(
        self,
        method: str,
        route: str,
        status: int,
        latency_ms: float,
        request_id: str,
        tenant: Optional[str] = None,
        trace_id: Optional[str] = None,
        **extra: Any,
    ) -> None:
        """Write one access line (never raises: logging must not 500 a
        request that was otherwise served fine)."""
        entry: Dict[str, Any] = {
            "ts": round(self._clock(), 3),
            "request_id": request_id,
            "tenant": tenant,
            "method": method,
            "route": route,
            "status": status,
            "latency_ms": round(latency_ms, 2),
        }
        if trace_id is not None:
            entry["trace_id"] = trace_id
        entry.update(extra)
        line = json.dumps(entry, sort_keys=True)
        try:
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
        except (OSError, ValueError):
            pass
