"""The network broker: ``atcd serve`` — queue and store over JSON/HTTP.

A :class:`BrokerServer` owns one :class:`~repro.distributed.SqliteQueue`
and/or one :class:`~repro.engine.SqliteStore` and exposes their protocol
methods as HTTP endpoints (see :mod:`repro.net.wire` for the schema), so
workers and coordinators on other hosts need nothing but a URL — no
shared filesystem.  All lease, retry, dead-letter, eviction and
identity-verification semantics are the sqlite implementations',
inherited rather than reimplemented; the broker adds only transport.

Because every queue operation executes here, *this process's clock* is
the only one lease math ever sees — cross-host clock skew, the reason
:class:`SqliteQueue` grew an expiry grace, cannot occur over the broker
by construction.

The server is a :class:`http.server.ThreadingHTTPServer`: one thread per
in-flight request, with thread-safety provided by the underlying queue
and store (both serialize on internal locks).  Authentication is optional
— construct with ``token=...`` (``atcd serve --token`` /
``$ATCD_BROKER_TOKEN``) and every request must carry a matching bearer
token.
"""

from __future__ import annotations

import contextlib
import hmac
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from ..distributed.queue import (
    DEFAULT_LEASE_GRACE,
    DEFAULT_MAX_ATTEMPTS,
    QueueError,
    SqliteQueue,
    TaskState,
)
from ..distributed.roots import QueueRoot, validate_queue_name
from ..engine.requests import AnalysisRequest, AnalysisResult
from ..engine.store import SqliteStore, StoreError
from ..obs import families as obs_families
from ..obs.promtext import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..obs.scrape import render_fleet_metrics
from ..obs.trace import activate_context
from ..obs.trace import span as trace_span
from .accesslog import AccessLog, REQUEST_ID_HEADER, request_trace_seed
from .wire import AUTH_HEADER, SERVER_NAME, WIRE_VERSION, task_to_wire

__all__ = ["BrokerServer"]

#: Maximum accepted request body, in bytes.  Task payloads embed whole
#: serialized models, so this is generous — but a broken or hostile client
#: must not make the server buffer arbitrary amounts of memory.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: The operation names :func:`_queue_operation` / :func:`_store_operation`
#: dispatch on.  Route *labels* on the request metrics are drawn only from
#: these closed sets — an arbitrary client path must never mint a new
#: label value (metric cardinality is a server resource).
_QUEUE_OP_NAMES = frozenset({
    "submit", "claim", "heartbeat", "complete", "fail", "expire_leases",
    "resubmit_dead", "cancel_pending", "prune", "counts", "drained",
    "tasks", "get_meta", "set_meta", "set_meta_if_absent", "summary",
})
_STORE_OP_NAMES = frozenset({"get", "put", "prune", "evict", "len", "summary"})


def _route_template(path: str) -> str:
    """Collapse one request path to a bounded-cardinality route label."""
    parts = path.strip("/").split("/")
    if path in ("/ping", "/metrics", "/queues"):
        return path
    if len(parts) == 2 and parts[0] == "queues" and parts[1] in ("create", "drop"):
        return path
    if len(parts) == 2 and parts[0] == "queue" and parts[1] in _QUEUE_OP_NAMES:
        return path
    if len(parts) == 3 and parts[0] == "queues" and parts[2] in _QUEUE_OP_NAMES:
        return f"/queues/{{name}}/{parts[2]}"
    if len(parts) == 2 and parts[0] == "store" and parts[1] in _STORE_OP_NAMES:
        return path
    return "other"


def _queue_operation(
    queue: SqliteQueue, op: str, args: Dict[str, Any]
) -> Dict[str, Any]:
    """Execute one ``POST /queue/<op>`` against the served queue."""
    if op == "submit":
        return {"task_ids": queue.submit(
            args["payloads"],
            max_attempts=args.get("max_attempts", DEFAULT_MAX_ATTEMPTS),
            dedupe_key=args.get("dedupe_key"),
        )}
    if op == "claim":
        task = queue.claim(args["worker_id"], float(args["lease_seconds"]))
        return {"task": None if task is None else task_to_wire(task)}
    if op == "heartbeat":
        return {"ok": queue.heartbeat(
            args["task_id"], args["worker_id"], float(args["lease_seconds"])
        )}
    if op == "complete":
        return {"ok": queue.complete(
            args["task_id"], args["worker_id"], args["result"]
        )}
    if op == "fail":
        return {"ok": queue.fail(
            args["task_id"], args["worker_id"], str(args["error"])
        )}
    if op == "expire_leases":
        return {"released": queue.expire_leases()}
    if op == "resubmit_dead":
        return {"task_ids": queue.resubmit_dead()}
    if op == "cancel_pending":
        return {"task_ids": queue.cancel_pending(list(args["task_ids"]))}
    if op == "prune":
        return {"pruned": queue.prune(float(args["ttl_seconds"]))}
    if op == "counts":
        return {"counts": queue.counts()}
    if op == "drained":
        return {"drained": queue.drained()}
    if op == "tasks":
        state = args.get("state")
        rows = queue.tasks(None if state is None else TaskState(state))
        return {"tasks": [task_to_wire(task) for task in rows]}
    if op == "get_meta":
        return {"value": queue.get_meta(args["key"])}
    if op == "set_meta":
        queue.set_meta(args["key"], args["value"])
        return {}
    if op == "set_meta_if_absent":
        return {"ok": queue.set_meta_if_absent(args["key"], args["value"])}
    if op == "summary":
        return {"summary": queue.summary()}
    raise KeyError(f"unknown queue operation {op!r}")


def _store_operation(
    store: SqliteStore, op: str, args: Dict[str, Any]
) -> Dict[str, Any]:
    """Execute one ``POST /store/<op>`` against the served store.

    ``get``/``put`` reconstruct the request (and result) from their JSON
    documents before touching the store, so a malformed document is a 400
    to the caller — and the sqlite store's embedded-identity verification
    then runs on the real objects, exactly as it does locally.
    """
    if op == "get":
        request = AnalysisRequest.from_dict(args["request"])
        result = store.get(args["fingerprint"], request)
        return {"result": None if result is None else result.to_dict()}
    if op == "put":
        store.put(
            args["fingerprint"],
            AnalysisRequest.from_dict(args["request"]),
            AnalysisResult.from_dict(args["result"]),
        )
        return {}
    if op == "prune":
        return {"dropped": store.prune(fingerprint=args.get("fingerprint"))}
    if op == "evict":
        return {"dropped": store.evict(
            ttl_seconds=args.get("ttl_seconds"),
            max_bytes=args.get("max_bytes"),
        )}
    if op == "len":
        return {"entries": len(store)}
    if op == "summary":
        return {"summary": store.summary()}
    raise KeyError(f"unknown store operation {op!r}")


class _BrokerHandler(BaseHTTPRequestHandler):
    """One request: authenticate, dispatch, reply JSON.  Quiet by default."""

    protocol_version = "HTTP/1.1"  # keep-alive, so clients reuse connections
    server_version = f"{SERVER_NAME}/{WIRE_VERSION}"

    _request_id = ""
    _status = 0
    _route = "other"
    _counted = False

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _observed(self, method: str, handler: Any) -> None:
        """Dispatch one request under a request id, trace context, request
        metrics and an access-log line.

        A tracing caller's ``X-Trace-Context`` (or a plausible
        ``X-Request-Id``) becomes the ambient trace for the handler, so a
        span exported here carries the caller's trace id — an untraced
        request runs without a span at all, keeping the hot claim/
        heartbeat polling loop free of per-request span exports.
        """
        self._request_id, context = request_trace_seed(self.headers)
        self._status = 0
        self._counted = False
        route = self._route = _route_template(self.path)
        started = time.perf_counter()
        try:
            if context is not None:
                with activate_context(context), trace_span(
                    "http.request",
                    attrs={"server": "broker", "method": method,
                           "route": route},
                ):
                    handler()
            else:
                handler()
        finally:
            elapsed = time.perf_counter() - started
            if not self._counted:
                # The reply methods count before flushing (a client that
                # saw the response must find it on an immediate scrape);
                # this covers handlers that crashed before replying.
                self._count_request(self._status)
            obs_families.http_request_seconds().observe(
                elapsed, server="broker", route=route
            )
            log = self.server.broker.access_log
            if log is not None:
                log.record(
                    method=method,
                    route=self.path,
                    status=self._status,
                    latency_ms=elapsed * 1000.0,
                    request_id=self._request_id,
                    trace_id=None if context is None else context.trace_id,
                )

    def _count_request(self, status: int) -> None:
        """Count the request *before* the reply is flushed.

        A client that saw the response may scrape ``/metrics`` on its next
        request; counting after the flush (the old shape) lost that race.
        """
        self._counted = True
        obs_families.http_requests_total().inc(
            server="broker", route=self._route, status=str(status)
        )

    def _reply(
        self, status: int, document: Dict[str, Any], close: bool = False
    ) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self._status = status
        self._count_request(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self._request_id:
            self.send_header(REQUEST_ID_HEADER, self._request_id)
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self._status = status
        self._count_request(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        if self._request_id:
            self.send_header(REQUEST_ID_HEADER, self._request_id)
        self.end_headers()
        self.wfile.write(payload)

    def _reply_error(
        self, status: int, message: str, kind: str, close: bool = False
    ) -> None:
        self._reply(status, {"ok": False, "error": message, "kind": kind},
                    close=close or status == 503)

    def _drain_body(self) -> None:
        """Consume an unread request body before an early error reply.

        Leftover body bytes on a kept-alive socket would be parsed as the
        next request line (garbling every later call), and closing the
        socket instead can RST away the error reply while the client is
        still uploading — so errors sent before dispatch (401, 404) read
        and discard the declared body first.  Undeclared or oversized
        lengths cannot be resynced; those connections are dropped.
        """
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self.close_connection = True
            return
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 1 << 20))
            if not chunk:
                break
            remaining -= len(chunk)

    def _shutting_down(self) -> bool:
        """Answer 503 (and drop the connection) on a closing broker.

        ``server_close()`` only closes the *listening* socket — handler
        threads blocked on kept-alive connections would otherwise keep
        answering against closed queue/store handles after a restart.
        The 503 tells clients to reconnect (their retry path), and
        ``Connection: close`` retires this stale socket.
        """
        if not self.server.broker.closing:
            return False
        self._reply_error(
            503, "broker is shutting down; retry", "unavailable"
        )
        return True

    def _authorized(self) -> bool:
        token = self.server.broker.token
        if token is None:
            return True
        presented = self.headers.get(AUTH_HEADER, "")
        expected = f"Bearer {token}"
        if hmac.compare_digest(presented.encode(), expected.encode()):
            return True
        self._drain_body()
        self._reply_error(
            401,
            "unauthorized: this broker requires a bearer token "
            "(set ATCD_BROKER_TOKEN to the server's token)",
            "unauthorized",
        )
        return False

    def _read_body(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._reply_error(
                400, f"invalid request body length {length}", "bad-request",
                close=True,  # the body was not (and will not be) read
            )
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            args = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            self._reply_error(
                400, "request body is not valid JSON", "bad-request"
            )
            return None
        if not isinstance(args, dict):
            self._reply_error(
                400, "request body must be a JSON object", "bad-request"
            )
            return None
        return args

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._observed("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._observed("POST", self._handle_post)

    def _handle_get(self) -> None:
        if self._shutting_down() or not self._authorized():
            return
        broker = self.server.broker
        if self.path == "/ping":
            document = {
                "ok": True,
                "server": SERVER_NAME,
                "wire_version": WIRE_VERSION,
                "queue": broker.queue is not None,
                "store": broker.store is not None,
                "root": broker.root is not None,
            }
            if broker.root is not None:
                document["queues"] = broker.root.names()
            self._reply(200, document)
            return
        if self.path == "/metrics":
            # Same auth posture as every other broker endpoint (the
            # bearer-token check above): metrics expose workload shape
            # and tenant names, which a token-protected broker protects.
            self._reply_text(
                200, broker.metrics_body(), PROMETHEUS_CONTENT_TYPE
            )
            return
        if self.path == "/queues":
            if broker.root is None:
                self._reply_error(
                    404, "this broker serves no queue root", "not-found"
                )
                return
            try:
                value = {"queues": broker.root.describe()}
            except QueueError as error:
                self._reply_error(400, str(error), "queue-error")
                return
            self._reply(200, {"ok": True, "value": value})
            return
        self._reply_error(404, f"unknown endpoint {self.path!r}", "not-found")

    def _resolve_queue(self, parts: Any) -> Optional[SqliteQueue]:
        """The queue a ``/queue/...`` or ``/queues/<name>/...`` path names.

        Replies with the appropriate error (and drains the body) when the
        path does not resolve; the caller just returns on ``None``.
        """
        broker = self.server.broker
        if parts[0] == "queue":
            if broker.queue is None:
                self._drain_body()
                message = (
                    "this broker serves named queues; use /queues/<name>/<op>"
                    if broker.root is not None else "this broker serves no queue"
                )
                self._reply_error(404, message, "not-found")
                return None
            return broker.queue
        name = parts[1]
        if broker.root is None:
            self._drain_body()
            self._reply_error(
                404, "this broker serves no queue root", "not-found"
            )
            return None
        try:
            validate_queue_name(name)
        except QueueError as error:
            self._drain_body()
            self._reply_error(400, str(error), "queue-error")
            return None
        if not broker.root.exists(name):
            self._drain_body()
            self._reply_error(
                404,
                f"no queue named {name!r}; create it with 'atcd queue create'",
                "not-found",
            )
            return None
        return broker.root.open(name)

    def _handle_root_verb(self, op: str) -> None:
        """``POST /queues/create`` / ``POST /queues/drop`` management verbs."""
        broker = self.server.broker
        if broker.root is None:
            self._drain_body()
            self._reply_error(
                404, "this broker serves no queue root", "not-found"
            )
            return
        args = self._read_body()
        if args is None:
            return
        try:
            name = args["name"]
            if op == "create":
                value = {"name": name, "created": broker.root.create(name)}
            else:
                value = {"name": name, "dropped": broker.root.drop(name)}
        except QueueError as error:
            self._reply_error(400, str(error), "queue-error")
        except (KeyError, ValueError, TypeError) as error:
            self._reply_error(400, f"bad queues request: {error}", "bad-request")
        else:
            self._reply(200, {"ok": True, "value": value})

    def _handle_post(self) -> None:
        if self._shutting_down() or not self._authorized():
            return
        parts = self.path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "queues" and parts[1] in (
            "create", "drop"
        ):
            self._handle_root_verb(parts[1])
            return
        is_queue_op = (
            (len(parts) == 2 and parts[0] == "queue")
            or (len(parts) == 3 and parts[0] == "queues")
        )
        is_store_op = len(parts) == 2 and parts[0] == "store"
        if not is_queue_op and not is_store_op:
            self._drain_body()
            self._reply_error(
                404, f"unknown endpoint {self.path!r}", "not-found"
            )
            return
        op = parts[-1]
        resource = "store" if is_store_op else "queue"
        broker = self.server.broker
        if is_store_op:
            target = broker.store
            if target is None:
                self._drain_body()
                self._reply_error(
                    404, "this broker serves no store", "not-found"
                )
                return
        else:
            target = self._resolve_queue(parts)
            if target is None:
                return
        args = self._read_body()
        if args is None:
            return
        try:
            if resource == "queue":
                value = _queue_operation(target, op, args)
            else:
                value = _store_operation(target, op, args)
        except QueueError as error:
            # A close() racing an in-flight request surfaces as "queue is
            # closed" — that is a broker restart, not a bad request.
            if broker.closing:
                self._reply_error(503, str(error), "unavailable")
            else:
                self._reply_error(400, str(error), "queue-error")
        except StoreError as error:
            if broker.closing:
                self._reply_error(503, str(error), "unavailable")
            else:
                self._reply_error(400, str(error), "store-error")
        except (KeyError, ValueError, TypeError) as error:
            self._reply_error(
                400, f"bad {resource} request: {error}", "bad-request"
            )
        # staticcheck: allow-broad-except(the broker must answer 500, not hang the client on an unexpected handler failure)
        except Exception as error:  # noqa: BLE001 — must answer, not hang
            self._reply_error(
                500, f"internal broker error: {error}", "internal"
            )
        else:
            self._reply(200, {"ok": True, "value": value})


class BrokerServer:
    """Serve a work queue and/or result store over HTTP.

    Parameters
    ----------
    queue_path / store_path:
        Sqlite files to expose (created if absent); at least one resource
        (queue, store or root) is required.  Requests against an
        unattached resource get a 404.
    root:
        Directory of *named* queues to serve instead of a single queue
        file (``atcd serve --root``): task operations then live at
        ``POST /queues/<name>/<op>``, with ``/queues`` listing and
        ``/queues/create|drop`` management verbs.  Mutually exclusive
        with ``queue_path``; combines freely with ``store_path``.
    host / port:
        Bind address; port 0 picks a free port (read it back from
        ``server.port`` / ``server.url``).
    token:
        Optional bearer token; when set, every request must present it.
    grace_seconds:
        Lease-expiry skew grace of the served queue.  The broker is a
        single clock, so the cross-host skew the grace exists for cannot
        occur here — it still applies (harmlessly) to direct sqlite
        access to the same file.
    verbose:
        Log one line per request to stderr (default: quiet).
    access_log:
        Optional :class:`~repro.net.accesslog.AccessLog`: one JSON line
        per served request (request id, route, status, latency).
    """

    def __init__(
        self,
        queue_path: Optional[str] = None,
        store_path: Optional[str] = None,
        root: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        token: Optional[str] = None,
        grace_seconds: float = DEFAULT_LEASE_GRACE,
        verbose: bool = False,
        access_log: Optional[AccessLog] = None,
    ) -> None:
        if queue_path is None and store_path is None and root is None:
            raise ValueError(
                "nothing to serve: pass queue_path, store_path and/or root"
            )
        if queue_path is not None and root is not None:
            raise ValueError(
                "pass either queue_path (one queue) or root (named queues), "
                "not both"
            )
        self.token = token
        self.queue: Optional[SqliteQueue] = None
        self.store: Optional[SqliteStore] = None
        self.root: Optional[QueueRoot] = None
        self.access_log = access_log
        self._thread: Optional[threading.Thread] = None
        self._served = threading.Event()
        self._closed = False
        try:
            if queue_path is not None:
                self.queue = SqliteQueue(
                    queue_path, grace_seconds=grace_seconds
                )
            if root is not None:
                self.root = QueueRoot(root, grace_seconds=grace_seconds)
            if store_path is not None:
                self.store = SqliteStore(store_path)
            self._http = ThreadingHTTPServer((host, port), _BrokerHandler)
        except BaseException:
            self.close()
            raise
        self._http.daemon_threads = True
        self._http.broker = self
        self._http.verbose = verbose
        self.host, self.port = self._http.server_address[:2]
        # Register every metric family up front so a scrape taken before
        # the first request still shows the full catalog (at zero).
        obs_families.ensure_all()

    def metrics_body(self) -> str:
        """The ``GET /metrics`` exposition body for this broker.

        Covers the broker's own registry plus every worker snapshot
        published into the served queue(s)' metadata, so one scrape
        answers for the whole fleet behind this broker.
        """
        queues = []
        if self.queue is not None:
            queues.append(self.queue)
        if self.root is not None:
            for name in self.root.names():
                with contextlib.suppress(QueueError):
                    queues.append(self.root.open(name))
        return render_fleet_metrics(queues=queues, store=self.store)

    @property
    def url(self) -> str:
        """The base URL clients point ``--queue``/``--store`` at."""
        return f"http://{self.host}:{self.port}"

    @property
    def closing(self) -> bool:
        """True once :meth:`close` began; handlers answer 503 from then."""
        return self._closed

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`close` (or a signal)."""
        self._served.set()
        self._http.serve_forever(poll_interval=0.1)

    def start(self) -> None:
        """Serve on a background daemon thread (tests, embedding)."""
        self._served.set()
        self._thread = threading.Thread(
            target=self.serve_forever, name="atcd-broker", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop serving and release the queue/store files (idempotent)."""
        if self._closed:
            return
        self._closed = True
        http = getattr(self, "_http", None)
        if http is not None:
            # shutdown() handshakes with a running serve loop and would
            # block forever if serving never started (e.g. a failed
            # constructor) — only the socket needs closing then.
            if self._served.is_set():
                http.shutdown()
            http.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        for resource in (self.queue, self.store, self.root):
            if resource is not None:
                with contextlib.suppress(Exception):
                    resource.close()

    def __enter__(self) -> "BrokerServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
