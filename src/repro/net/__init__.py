"""Network broker: queue and store over HTTP, for shared-nothing fleets.

The distributed runtime (:mod:`repro.distributed`) and the shared result
store (:mod:`repro.engine.store`) both coordinate through a sqlite file —
which requires every host to mount one filesystem.  This package removes
that requirement with a deliberately small, stdlib-only HTTP layer:

``server``
    :class:`BrokerServer` — ``atcd serve`` — a threading
    :mod:`http.server` wrapper that exposes one :class:`SqliteQueue`
    and/or one :class:`SqliteStore` as JSON/HTTP endpoints.  All queue
    and store semantics (atomic claims, leases, retries, dead-letter,
    identity-verified reads, eviction) are the sqlite implementations',
    inherited rather than reimplemented — and because every operation
    executes on the broker, its clock is the only one lease math sees.
``client``
    :class:`HttpQueue` / :class:`HttpStore` — drop-in ``WorkQueue`` /
    ``ResultStore`` implementations with per-thread connection reuse and
    retry/backoff, so fleets ride out broker restarts.
``wire``
    The JSON/HTTP schema both sides speak, versioned separately from the
    sqlite layouts.

Typical use — one broker host, N shared-nothing workers::

    # broker host (owns the only state):
    #   atcd serve --queue run.queue --store results.sqlite --port 8765
    # every other host:
    #   atcd dist worker --queue http://broker:8765 --store http://broker:8765

``open_queue``/``open_store`` dispatch on the URL scheme, so every
``--queue``/``--store`` flag accepts ``http://host:port`` wherever it
accepts a path.  Optional bearer-token auth: start the server with
``--token`` (or ``$ATCD_BROKER_TOKEN``) and export the same variable on
the clients.
"""

from .accesslog import AccessLog, REQUEST_ID_HEADER
from .client import BrokerAdmin, HttpQueue, HttpStore, split_queue_url
from .server import BrokerServer
from .wire import TOKEN_ENV_VAR, WIRE_VERSION

__all__ = [
    "AccessLog",
    "BrokerAdmin",
    "BrokerServer",
    "HttpQueue",
    "HttpStore",
    "REQUEST_ID_HEADER",
    "TOKEN_ENV_VAR",
    "WIRE_VERSION",
    "split_queue_url",
]
