"""The broker wire schema: JSON/HTTP framing shared by server and clients.

Every broker operation is one HTTP request against an ``atcd serve``
process:

``GET /ping``
    Liveness and capability probe.  Returns ``{"server": "atcd-broker",
    "wire_version": 1, "queue": bool, "store": bool, "root": bool}`` —
    clients verify ``wire_version`` and that the resource they need is
    attached.  A ``--root`` broker additionally reports its queue names
    under ``"queues"``.
``POST /queue/<op>`` / ``POST /store/<op>``
    One :class:`~repro.distributed.queue.WorkQueue` /
    :class:`~repro.engine.store.ResultStore` protocol method each.  The
    request body is a JSON object of the method's arguments; the response
    is ``{"ok": true, "value": {...}}`` with the method's result.
``POST /queues/<name>/<op>``
    The same queue operations against one *named* queue of an
    ``atcd serve --root`` broker (clients address it as
    ``http://host:port/queues/<name>``).  Unknown names are 404 — a typo
    must not conjure an empty queue.
``GET /queues`` / ``POST /queues/create`` / ``POST /queues/drop``
    Root management: list hosted queues (name + state counts), create one
    (idempotent; ``created`` reports whether it was new), delete one.

Errors are JSON too — ``{"ok": false, "error": "<message>", "kind":
"<kind>"}`` — with the HTTP status carrying the class of failure:

* ``400`` — the request is invalid: malformed JSON, missing arguments, an
  unknown operation, or a server-side :class:`QueueError`/:class:`StoreError`
  (``kind`` distinguishes them).  Never retried by clients.
* ``401`` — missing or wrong bearer token.  Never retried.
* ``404`` — unknown path, or the broker serves no queue/store.  Never
  retried.
* ``500`` — an internal server failure.  Never retried (a genuine bug
  should surface, not loop).

Connection-level failures (refused, reset, timeout) *are* retried by
clients with exponential backoff — that is what lets a fleet ride out a
broker restart.  A retried ``claim`` whose first response was lost may
leave an orphan lease behind, which the normal expiry sweep recovers —
the same guarantee as a crashed worker.  ``submit`` is the one operation
a blind retry would corrupt (a duplicated batch), so every submit
carries a ``dedupe_key``, stable across one call's retries; the server
records the resulting task ids under it atomically and answers a replay
with the original ids.

Authentication is optional: when the server holds a token, every request
must carry ``Authorization: Bearer <token>``.  Clients read
``$ATCD_BROKER_TOKEN`` by default.

Task rows travel as plain dicts (:func:`task_to_wire` /
:func:`task_from_wire`); stored analysis results travel as their existing
JSON documents (``AnalysisRequest.to_dict()`` / ``AnalysisResult.to_dict()``),
so the sqlite store's embedded-identity poisoning guard runs unchanged on
the server.
"""

from __future__ import annotations

from typing import Any, Dict

from ..distributed.queue import Task, TaskState

__all__ = [
    "WIRE_VERSION",
    "AUTH_HEADER",
    "TOKEN_ENV_VAR",
    "SERVER_NAME",
    "task_to_wire",
    "task_from_wire",
]

#: Version of the wire protocol.  Bump on any incompatible change; clients
#: reject servers speaking another version during ``ping``.
WIRE_VERSION = 1

#: HTTP header carrying the bearer token when auth is enabled.
AUTH_HEADER = "Authorization"

#: Environment variable clients (and ``atcd serve``) read the token from.
TOKEN_ENV_VAR = "ATCD_BROKER_TOKEN"

#: The ``server`` field of ``GET /ping`` — a sanity check that the URL
#: points at an atcd broker and not some other HTTP service.
SERVER_NAME = "atcd-broker"


def task_to_wire(task: Task) -> Dict[str, Any]:
    """One queue task as a JSON-compatible dict (state as its string)."""
    return {
        "task_id": task.task_id,
        "seq": task.seq,
        "payload": task.payload,
        "state": task.state.value,
        "attempts": task.attempts,
        "max_attempts": task.max_attempts,
        "worker_id": task.worker_id,
        "lease_expires_unix": task.lease_expires_unix,
        "result": task.result,
        "error": task.error,
    }


def task_from_wire(data: Dict[str, Any]) -> Task:
    """Rebuild a :class:`Task` from its wire dict (inverse of the above)."""
    return Task(
        task_id=data["task_id"],
        seq=data["seq"],
        payload=data["payload"],
        state=TaskState(data["state"]),
        attempts=data["attempts"],
        max_attempts=data["max_attempts"],
        worker_id=data.get("worker_id"),
        lease_expires_unix=data.get("lease_expires_unix"),
        result=data.get("result"),
        error=data.get("error"),
    )
