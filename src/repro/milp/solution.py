"""Solver result types shared by every MILP backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

__all__ = ["SolveStatus", "MilpSolution"]


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        """``True`` when an optimal solution was found."""
        return self is SolveStatus.OPTIMAL


@dataclass(frozen=True)
class MilpSolution:
    """The result of solving a single-objective (I)LP.

    Attributes
    ----------
    status:
        Solve outcome.
    objective_value:
        Value of the objective *in the sense it was declared* (so a
        maximisation objective reports the maximum, not its negation);
        ``None`` unless the status is optimal.
    assignment:
        Variable values; empty unless the status is optimal.
    nodes_explored:
        Number of branch-and-bound nodes processed (0 for direct backends
        that do not expose the count).
    backend:
        Name of the solving backend ("highs", "branch-and-bound", …).
    """

    status: SolveStatus
    objective_value: Optional[float] = None
    assignment: Mapping[str, float] = field(default_factory=dict)
    nodes_explored: int = 0
    backend: str = ""

    def value(self, variable: str) -> float:
        """Return the value of a variable (0.0 if absent from the assignment)."""
        return float(self.assignment.get(variable, 0.0))

    def rounded_assignment(self, tolerance: float = 1e-6) -> Dict[str, int]:
        """Return the assignment with integral values rounded to ints.

        Intended for binary programs; raises ``ValueError`` when a value is
        further than ``tolerance`` from an integer.
        """
        result: Dict[str, int] = {}
        for name, value in self.assignment.items():
            nearest = round(value)
            if abs(value - nearest) > tolerance:
                raise ValueError(
                    f"variable {name!r} has non-integral value {value!r} in a "
                    "solution expected to be integral"
                )
            result[name] = int(nearest)
        return result
