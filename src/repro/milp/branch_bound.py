"""A pure-Python branch-and-bound solver for 0/1 integer linear programs.

This is the fallback / reference ILP engine of the MILP substrate: it solves
the single-objective programs produced by the Theorem 6/7 translation using
classical LP-based branch and bound.

* The LP relaxation of each node is solved either with SciPy's HiGHS
  ``linprog`` (fast, default) or with the from-scratch simplex of
  :mod:`repro.milp.simplex` (``lp_engine="simplex"``), which makes the whole
  stack independent of external solvers when desired.
* Branching picks the most fractional variable; exploration is best-first on
  the relaxation bound, which keeps the incumbent close to optimal early and
  lets the bound prune aggressively.
* Because the programs derived from attack trees have the down-closure
  property (setting variables to zero stays feasible), the solver also seeds
  the incumbent with the all-zero solution when it is feasible, providing an
  immediate finite bound.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .model import IntegerProgram, Objective
from .simplex import solve_linear_program
from .solution import MilpSolution, SolveStatus

try:  # SciPy is a hard dependency of the package, but keep the import local.
    from scipy.optimize import linprog as _scipy_linprog
except ImportError:  # pragma: no cover - exercised only without SciPy
    _scipy_linprog = None

__all__ = ["BranchAndBoundSolver"]

_INTEGRALITY_TOLERANCE = 1e-6
_BOUND_TOLERANCE = 1e-9


@dataclass(order=True)
class _Node:
    """A branch-and-bound node ordered by its relaxation bound."""

    bound: float
    sequence: int
    fixed_lower: np.ndarray = None  # type: ignore[assignment]
    fixed_upper: np.ndarray = None  # type: ignore[assignment]


class BranchAndBoundSolver:
    """LP-based best-first branch and bound for (mostly binary) ILPs.

    Parameters
    ----------
    lp_engine:
        ``"scipy"`` (default) to solve relaxations with HiGHS via
        ``scipy.optimize.linprog``, or ``"simplex"`` to use the built-in
        dense simplex.
    node_limit:
        Safety valve on the number of explored nodes; exceeding it returns
        an ``ERROR`` status rather than looping forever.
    """

    def __init__(self, lp_engine: str = "scipy", node_limit: int = 200_000) -> None:
        if lp_engine not in {"scipy", "simplex"}:
            raise ValueError("lp_engine must be 'scipy' or 'simplex'")
        if lp_engine == "scipy" and _scipy_linprog is None:
            lp_engine = "simplex"
        self.lp_engine = lp_engine
        self.node_limit = node_limit

    # ------------------------------------------------------------------ #
    # LP relaxation
    # ------------------------------------------------------------------ #
    def _solve_relaxation(
        self,
        c: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
    ) -> Tuple[SolveStatus, Optional[float], Optional[np.ndarray]]:
        if self.lp_engine == "scipy":
            bounds = list(zip(lower, upper))
            result = _scipy_linprog(
                c,
                A_ub=a_ub if a_ub.size else None,
                b_ub=b_ub if b_ub.size else None,
                bounds=bounds,
                method="highs",
            )
            if result.status == 0:
                return SolveStatus.OPTIMAL, float(result.fun), np.asarray(result.x)
            if result.status == 2:
                return SolveStatus.INFEASIBLE, None, None
            if result.status == 3:
                return SolveStatus.UNBOUNDED, None, None
            return SolveStatus.ERROR, None, None
        outcome = solve_linear_program(c, a_ub, b_ub, lower, upper)
        return outcome.status, outcome.objective_value, outcome.x

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def solve(
        self, program: IntegerProgram, objective: Optional[Objective] = None
    ) -> MilpSolution:
        """Solve the program (or the given objective of it) to optimality."""
        if objective is None:
            objective = program.objective
        c, a_ub, b_ub, lower, upper, integrality = program.dense_arrays(objective)
        order = program.variable_order
        integral_indices = np.where(integrality > 0.5)[0]

        counter = itertools.count()
        best_value = math.inf
        best_x: Optional[np.ndarray] = None

        # Seed the incumbent with the all-zero point when feasible (always
        # true for the attack-tree formulations: not attacking is allowed).
        zero = np.clip(np.zeros_like(c), lower, upper)
        if self._is_integral_feasible(zero, a_ub, b_ub, lower, upper, integral_indices):
            best_value = float(c @ zero)
            best_x = zero

        status, bound, relaxed = self._solve_relaxation(c, a_ub, b_ub, lower, upper)
        if status is SolveStatus.INFEASIBLE:
            return MilpSolution(status=SolveStatus.INFEASIBLE, backend=self._backend_name())
        if status is SolveStatus.UNBOUNDED:
            return MilpSolution(status=SolveStatus.UNBOUNDED, backend=self._backend_name())
        if status is not SolveStatus.OPTIMAL:
            return MilpSolution(status=SolveStatus.ERROR, backend=self._backend_name())

        heap: List[_Node] = []
        root = _Node(bound=bound, sequence=next(counter))
        root.fixed_lower = lower.copy()
        root.fixed_upper = upper.copy()
        heapq.heappush(heap, root)

        explored = 0
        while heap:
            node = heapq.heappop(heap)
            if node.bound >= best_value - _BOUND_TOLERANCE:
                continue  # cannot improve on the incumbent
            explored += 1
            if explored > self.node_limit:
                return MilpSolution(status=SolveStatus.ERROR, backend=self._backend_name(),
                                    nodes_explored=explored)
            status, value, x = self._solve_relaxation(
                c, a_ub, b_ub, node.fixed_lower, node.fixed_upper
            )
            if status is not SolveStatus.OPTIMAL or value is None or x is None:
                continue
            if value >= best_value - _BOUND_TOLERANCE:
                continue
            branch_index = self._most_fractional(x, integral_indices)
            if branch_index is None:
                # Integral solution: new incumbent.
                best_value = value
                best_x = x
                continue
            floor_value = math.floor(x[branch_index] + _INTEGRALITY_TOLERANCE)
            # Down branch: x_i ≤ floor.
            down_upper = node.fixed_upper.copy()
            down_upper[branch_index] = floor_value
            down = _Node(bound=value, sequence=next(counter))
            down.fixed_lower = node.fixed_lower.copy()
            down.fixed_upper = down_upper
            heapq.heappush(heap, down)
            # Up branch: x_i ≥ floor + 1.
            up_lower = node.fixed_lower.copy()
            up_lower[branch_index] = floor_value + 1
            if up_lower[branch_index] <= node.fixed_upper[branch_index] + _BOUND_TOLERANCE:
                up = _Node(bound=value, sequence=next(counter))
                up.fixed_lower = up_lower
                up.fixed_upper = node.fixed_upper.copy()
                heapq.heappush(heap, up)

        if best_x is None:
            return MilpSolution(status=SolveStatus.INFEASIBLE, backend=self._backend_name(),
                                nodes_explored=explored)
        # Snap integral variables to the integers they are (within tolerance)
        # so reported assignments and objective values are exact.
        snapped = best_x.copy()
        for index in integral_indices:
            snapped[index] = round(snapped[index])
        assignment = {name: float(snapped[i]) for i, name in enumerate(order)}
        # Report the objective in its declared sense.
        reported = objective.value(assignment)
        return MilpSolution(
            status=SolveStatus.OPTIMAL,
            objective_value=reported,
            assignment=assignment,
            nodes_explored=explored,
            backend=self._backend_name(),
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _backend_name(self) -> str:
        return f"branch-and-bound[{self.lp_engine}]"

    @staticmethod
    def _most_fractional(x: np.ndarray, integral_indices: np.ndarray) -> Optional[int]:
        """Index of the integral variable furthest from an integer, or None."""
        if integral_indices.size == 0:
            return None
        fractional = np.abs(x[integral_indices] - np.round(x[integral_indices]))
        worst = int(np.argmax(fractional))
        if fractional[worst] <= _INTEGRALITY_TOLERANCE:
            return None
        return int(integral_indices[worst])

    @staticmethod
    def _is_integral_feasible(
        x: np.ndarray,
        a_ub: np.ndarray,
        b_ub: np.ndarray,
        lower: np.ndarray,
        upper: np.ndarray,
        integral_indices: np.ndarray,
    ) -> bool:
        if np.any(x < lower - 1e-9) or np.any(x > upper + 1e-9):
            return False
        if a_ub.size and np.any(a_ub @ x > b_ub + 1e-9):
            return False
        if integral_indices.size:
            deviations = np.abs(x[integral_indices] - np.round(x[integral_indices]))
            if np.any(deviations > _INTEGRALITY_TOLERANCE):
                return False
        return True
