"""Exact bi-objective integer linear programming via the ε-constraint method.

Theorem 6 of the paper reduces the cost-damage Pareto front of a DAG-like AT
to a **bi-objective** ILP.  The original artifact drives Gurobi with the
Özlen–Azizoğlu style reduction to a sequence of single-objective problems;
this module implements the same idea with the classical *ε-constraint*
scheme, which for bi-objective problems enumerates exactly the set of
non-dominated points:

1. minimise the primary objective subject to ``secondary ≤ ε``
   (initially ``ε = ∞``);
2. tighten: minimise the secondary objective subject to the primary being at
   its optimum (a lexicographic step that lands exactly on the non-dominated
   point);
3. record the point, set ``ε`` to the achieved secondary value minus a step
   ``δ``, repeat until infeasible.

Exactness requires ``δ`` to be smaller than the smallest gap between
distinct achievable secondary-objective values.  Attack-tree instances have
objective coefficients on a coarse grid (integer costs in the case studies
and random suites, one-decimal damages in the data-server tree), so the step
is derived automatically from the coefficient grid; callers can override it
for exotic instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from .highs import default_solver
from .model import (
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    Objective,
    ObjectiveSense,
)
from .solution import SolveStatus

__all__ = ["BiobjectivePoint", "BiobjectiveResult", "EpsilonConstraintSolver",
           "infer_step"]


@dataclass(frozen=True)
class BiobjectivePoint:
    """A non-dominated point of a bi-objective ILP.

    ``primary`` and ``secondary`` are reported in the *declared* senses of
    the two objectives (so a maximisation objective reports its maximum).
    """

    primary: float
    secondary: float
    assignment: Mapping[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class BiobjectiveResult:
    """The full non-dominated set, ordered by increasing secondary value."""

    points: Tuple[BiobjectivePoint, ...]
    subproblems_solved: int

    def values(self) -> List[Tuple[float, float]]:
        """The (primary, secondary) value pairs."""
        return [(p.primary, p.secondary) for p in self.points]


def infer_step(coefficient_groups: Sequence[Sequence[float]], fallback: float = 1e-6) -> float:
    """Infer a safe ε-constraint step from objective coefficient grids.

    If every coefficient in every group is (numerically) a multiple of
    ``10^-k`` for some ``k ≤ 6``, any two distinct achievable objective
    values differ by at least ``10^-k``, so half of that is a safe step.
    Otherwise ``fallback`` is returned and exactness is only guaranteed up
    to that resolution.
    """
    values = [abs(v) for group in coefficient_groups for v in group if v]
    if not values:
        return 1.0
    for exponent in range(0, 7):
        quantum = 10.0 ** (-exponent)
        if all(abs(v / quantum - round(v / quantum)) < 1e-9 for v in values):
            return quantum / 2.0
    return fallback


class EpsilonConstraintSolver:
    """Enumerate the non-dominated set of a bi-objective integer program.

    Parameters
    ----------
    solver:
        Single-objective ILP solver exposing ``solve(program, objective)``;
        defaults to the best available backend (HiGHS, else branch-and-bound).
    step:
        The ε decrement ``δ``; ``None`` derives it from the objective
        coefficients via :func:`infer_step`.
    max_points:
        Safety valve: stop after this many non-dominated points (the fronts
        of Theorem 5 can be exponential in the worst case).
    """

    def __init__(
        self,
        solver=None,
        step: Optional[float] = None,
        max_points: int = 100_000,
    ) -> None:
        self.solver = solver if solver is not None else default_solver()
        self.step = step
        self.max_points = max_points

    def solve(
        self,
        program: IntegerProgram,
        primary: Objective,
        secondary: Objective,
    ) -> BiobjectiveResult:
        """Compute the non-dominated set of ``(primary, secondary)``.

        ``primary`` is optimised first in each ε-subproblem; ``secondary``
        is the objective the ε bound sweeps over.  For the cost-damage
        problems the natural choice is primary = damage (maximise),
        secondary = cost (minimise): each iteration asks "what is the most
        damage achievable with cost below ε", exactly problem DgC.
        """
        step = self.step
        if step is None:
            step = infer_step(
                [list(primary.expression.coefficients.values()),
                 list(secondary.expression.coefficients.values())]
            )

        # Secondary objective normalised to minimisation for the ε bound.
        secondary_min_expr = secondary.as_minimization()

        points: List[BiobjectivePoint] = []
        epsilon = math.inf
        subproblems = 0

        while len(points) < self.max_points:
            constrained = self._with_epsilon_bound(program, secondary_min_expr, epsilon)
            first = self.solver.solve(constrained, primary)
            subproblems += 1
            if first.status is not SolveStatus.OPTIMAL:
                break
            primary_value = first.objective_value

            # Lexicographic tightening: among solutions achieving the primary
            # optimum, minimise the secondary objective.
            tightened = self._with_epsilon_bound(program, secondary_min_expr, epsilon)
            self._bound_primary(tightened, primary, primary_value, step)
            second = self.solver.solve(tightened, secondary)
            subproblems += 1
            if second.status is not SolveStatus.OPTIMAL:
                # Numerical corner case: fall back to the first solution.
                second = first
            assignment = dict(second.assignment)
            secondary_value = secondary.value(assignment)
            primary_value = primary.value(assignment)
            points.append(
                BiobjectivePoint(
                    primary=primary_value,
                    secondary=secondary_value,
                    assignment=assignment,
                )
            )
            epsilon = secondary_min_expr.evaluate(assignment) - step

        ordered = tuple(sorted(points, key=lambda p: p.secondary))
        return BiobjectiveResult(points=ordered, subproblems_solved=subproblems)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _clone_program(program: IntegerProgram) -> IntegerProgram:
        clone = IntegerProgram(name=program.name)
        for variable in program.variables.values():
            clone.add_variable(variable.name, variable.kind, variable.lower, variable.upper)
        for constraint in program.constraints:
            clone.add_constraint(
                constraint.expression, constraint.sense, constraint.rhs, constraint.name
            )
        return clone

    def _with_epsilon_bound(
        self,
        program: IntegerProgram,
        secondary_min_expr: LinearExpression,
        epsilon: float,
    ) -> IntegerProgram:
        clone = self._clone_program(program)
        if math.isfinite(epsilon):
            clone.add_constraint(
                secondary_min_expr, ConstraintSense.LESS_EQUAL, epsilon, name="epsilon"
            )
        return clone

    @staticmethod
    def _bound_primary(
        program: IntegerProgram,
        primary: Objective,
        primary_value: float,
        step: float,
    ) -> None:
        """Constrain the primary objective to (numerically) its optimum."""
        tolerance = min(step / 2.0, 1e-6)
        expr = primary.expression
        if primary.sense is ObjectiveSense.MINIMIZE:
            program.add_constraint(
                expr, ConstraintSense.LESS_EQUAL, primary_value + tolerance,
                name="primary-optimum",
            )
        else:
            program.add_constraint(
                expr, ConstraintSense.GREATER_EQUAL, primary_value - tolerance,
                name="primary-optimum",
            )
