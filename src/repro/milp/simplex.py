"""A self-contained dense two-phase simplex solver for LP relaxations.

The branch-and-bound solver (:mod:`repro.milp.branch_bound`) needs to solve
linear-programming relaxations.  Its default engine is SciPy's HiGHS
``linprog``; this module provides a from-scratch alternative so that the
whole ILP stack can run — and be understood, and be tested — without any
external solver.  It also serves as an independent oracle: the test-suite
cross-checks HiGHS against this implementation on random programs.

The solver handles problems of the form::

    minimise    c·x
    subject to  A_ub·x ≤ b_ub
                lower ≤ x ≤ upper   (finite bounds)

via the classical reduction to standard form (shift by the lower bounds,
slack variables for the ≤ rows and for the upper bounds, artificial
variables for phase 1).  Pivoting uses Dantzig's rule with an automatic
switch to Bland's rule to guarantee termination in the presence of
degeneracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .solution import SolveStatus

__all__ = ["SimplexResult", "solve_linear_program"]

_TOLERANCE = 1e-9
#: After this many Dantzig pivots the solver switches to Bland's rule,
#: which cannot cycle.
_BLAND_SWITCH = 2000
_MAX_ITERATIONS = 20000


@dataclass(frozen=True)
class SimplexResult:
    """Result of an LP solve: status, objective value and primal point."""

    status: SolveStatus
    objective_value: Optional[float]
    x: Optional[np.ndarray]


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, column: int) -> None:
    """Perform one tableau pivot: make ``column`` basic in ``row``."""
    tableau[row] /= tableau[row, column]
    for other in range(tableau.shape[0]):
        if other != row and abs(tableau[other, column]) > _TOLERANCE:
            tableau[other] -= tableau[other, column] * tableau[row]
    basis[row] = column


def _choose_entering(objective_row: np.ndarray, allowed: int, use_bland: bool) -> Optional[int]:
    """Pick the entering column (negative reduced cost) or ``None`` if optimal."""
    candidates = np.where(objective_row[:allowed] < -_TOLERANCE)[0]
    if candidates.size == 0:
        return None
    if use_bland:
        return int(candidates[0])
    return int(candidates[np.argmin(objective_row[candidates])])


def _choose_leaving(
    tableau: np.ndarray, column: int, use_bland: bool, basis: np.ndarray
) -> Optional[int]:
    """Minimum-ratio test; ``None`` means the LP is unbounded."""
    rows = tableau.shape[0] - 1
    ratios = np.full(rows, np.inf)
    for row in range(rows):
        coefficient = tableau[row, column]
        if coefficient > _TOLERANCE:
            ratios[row] = tableau[row, -1] / coefficient
    if not np.isfinite(ratios).any():
        return None
    best = np.min(ratios)
    ties = np.where(np.abs(ratios - best) <= _TOLERANCE)[0]
    if use_bland and ties.size > 1:
        # Bland's rule: among ties pick the row whose basic variable has the
        # smallest index, preventing cycling.
        return int(ties[np.argmin(basis[ties])])
    return int(ties[0])


def _run_simplex(tableau: np.ndarray, basis: np.ndarray, allowed: int) -> SolveStatus:
    """Run primal simplex iterations on a tableau in canonical form."""
    for iteration in range(_MAX_ITERATIONS):
        use_bland = iteration >= _BLAND_SWITCH
        column = _choose_entering(tableau[-1], allowed, use_bland)
        if column is None:
            return SolveStatus.OPTIMAL
        row = _choose_leaving(tableau, column, use_bland, basis)
        if row is None:
            return SolveStatus.UNBOUNDED
        _pivot(tableau, basis, row, column)
    return SolveStatus.ERROR


def solve_linear_program(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
) -> SimplexResult:
    """Solve ``min c·x  s.t.  A_ub·x ≤ b_ub, lower ≤ x ≤ upper``.

    All bounds must be finite (the AT formulations only use binaries, whose
    bounds are [0, 1]); ``ValueError`` is raised otherwise.
    """
    c = np.asarray(c, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float).reshape(-1, c.size) if a_ub is not None else np.zeros((0, c.size))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    lower = np.asarray(lower, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if not (np.isfinite(lower).all() and np.isfinite(upper).all()):
        raise ValueError("the simplex backend requires finite variable bounds")
    if np.any(lower > upper + _TOLERANCE):
        return SimplexResult(SolveStatus.INFEASIBLE, None, None)

    n = c.size
    # Shift x = lower + y with 0 ≤ y ≤ upper − lower.
    span = upper - lower
    shifted_b = b_ub - a_ub @ lower if a_ub.size else b_ub

    # Rows: original ≤ constraints, then upper bounds y_i ≤ span_i.
    bound_rows = np.eye(n)
    a_full = np.vstack([a_ub, bound_rows]) if a_ub.size else bound_rows
    b_full = np.concatenate([shifted_b, span])

    m = a_full.shape[0]
    # Normalise rows so every right-hand side is non-negative.
    negative = b_full < 0
    a_full[negative] *= -1.0
    b_full[negative] *= -1.0
    # Slack coefficient is +1 for untouched rows, −1 for flipped rows.
    slack = np.eye(m)
    slack[negative, negative] = -1.0

    artificial = np.eye(m)
    total_columns = n + m + m  # structural + slack + artificial

    tableau = np.zeros((m + 1, total_columns + 1))
    tableau[:m, :n] = a_full
    tableau[:m, n:n + m] = slack
    tableau[:m, n + m:n + 2 * m] = artificial
    tableau[:m, -1] = b_full

    basis = np.arange(n + m, n + 2 * m)

    # ---- Phase 1: minimise the sum of artificial variables. ---------------- #
    tableau[-1, n + m:n + 2 * m] = 1.0
    # Canonicalise: subtract artificial rows from the objective row.
    tableau[-1] -= tableau[:m].sum(axis=0)
    status = _run_simplex(tableau, basis, allowed=total_columns)
    if status is not SolveStatus.OPTIMAL:
        return SimplexResult(SolveStatus.ERROR, None, None)
    if -tableau[-1, -1] > 1e-7:
        return SimplexResult(SolveStatus.INFEASIBLE, None, None)

    # Drive any artificial variable remaining in the basis out of it.
    for row in range(m):
        if basis[row] >= n + m:
            pivot_column = None
            for column in range(n + m):
                if abs(tableau[row, column]) > _TOLERANCE:
                    pivot_column = column
                    break
            if pivot_column is not None:
                _pivot(tableau, basis, row, pivot_column)
            # If the row is entirely zero it is redundant; leaving the
            # artificial basic at value 0 is harmless.

    # ---- Phase 2: original objective over structural + slack columns. ------ #
    tableau[-1, :] = 0.0
    tableau[-1, :n] = c
    # Canonicalise with respect to the current basis.
    for row in range(m):
        column = basis[row]
        if column < n + m and abs(tableau[-1, column]) > _TOLERANCE:
            tableau[-1] -= tableau[-1, column] * tableau[row]
    status = _run_simplex(tableau, basis, allowed=n + m)
    if status is SolveStatus.UNBOUNDED:
        return SimplexResult(SolveStatus.UNBOUNDED, None, None)
    if status is not SolveStatus.OPTIMAL:
        return SimplexResult(SolveStatus.ERROR, None, None)

    y = np.zeros(total_columns)
    for row in range(m):
        y[basis[row]] = tableau[row, -1]
    x = lower + y[:n]
    objective_value = float(c @ x)
    return SimplexResult(SolveStatus.OPTIMAL, objective_value, x)
