"""HiGHS backend: solve :class:`IntegerProgram` via ``scipy.optimize.milp``.

The paper uses Gurobi (through YALMIP) to solve the ILP formulations of
Theorems 6 and 7.  Gurobi is not available offline, so the primary backend
here is the HiGHS mixed-integer solver bundled with SciPy, which solves the
identical formulations to proven optimality; only wall-clock constants
differ.  The pure-Python branch-and-bound solver
(:mod:`repro.milp.branch_bound`) is the always-available fallback and the
cross-check oracle.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .model import IntegerProgram, Objective
from .solution import MilpSolution, SolveStatus

try:
    from scipy.optimize import LinearConstraint, milp as _scipy_milp
    from scipy.optimize import Bounds
except ImportError:  # pragma: no cover - SciPy is a declared dependency
    _scipy_milp = None

__all__ = ["HighsSolver", "default_solver"]


class HighsSolver:
    """Solve integer programs with SciPy's HiGHS MILP interface."""

    def __init__(self, time_limit: Optional[float] = None, mip_gap: float = 0.0) -> None:
        if _scipy_milp is None:  # pragma: no cover
            raise RuntimeError(
                "scipy.optimize.milp is unavailable; use BranchAndBoundSolver instead"
            )
        self.time_limit = time_limit
        self.mip_gap = mip_gap

    def solve(
        self, program: IntegerProgram, objective: Optional[Objective] = None
    ) -> MilpSolution:
        """Solve the program (or one chosen objective of it) to optimality."""
        if objective is None:
            objective = program.objective
        c, a_ub, b_ub, lower, upper, integrality = program.dense_arrays(objective)

        constraints = []
        if a_ub.size:
            constraints.append(LinearConstraint(a_ub, ub=b_ub))
        options = {"mip_rel_gap": self.mip_gap}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit

        result = _scipy_milp(
            c=c,
            constraints=constraints,
            bounds=Bounds(lb=lower, ub=upper),
            integrality=integrality,
            options=options,
        )

        if result.status == 0 and result.x is not None:
            assignment = {
                name: float(result.x[i]) for i, name in enumerate(program.variable_order)
            }
            return MilpSolution(
                status=SolveStatus.OPTIMAL,
                objective_value=objective.value(assignment),
                assignment=assignment,
                backend="highs",
            )
        if result.status == 2:
            return MilpSolution(status=SolveStatus.INFEASIBLE, backend="highs")
        if result.status == 3:
            return MilpSolution(status=SolveStatus.UNBOUNDED, backend="highs")
        return MilpSolution(status=SolveStatus.ERROR, backend="highs")


def default_solver(prefer: str = "highs"):
    """Return the preferred available single-objective ILP solver.

    Parameters
    ----------
    prefer:
        ``"highs"`` (default) or ``"branch-and-bound"``.  When HiGHS is
        requested but SciPy's MILP interface is missing, the pure-Python
        branch-and-bound solver is returned instead.
    """
    if prefer == "highs" and _scipy_milp is not None:
        return HighsSolver()
    from .branch_bound import BranchAndBoundSolver

    return BranchAndBoundSolver()
