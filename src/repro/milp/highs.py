"""HiGHS backend: solve :class:`IntegerProgram` via ``scipy.optimize.milp``.

The paper uses Gurobi (through YALMIP) to solve the ILP formulations of
Theorems 6 and 7.  Gurobi is not available offline, so the primary backend
here is the HiGHS mixed-integer solver bundled with SciPy, which solves the
identical formulations to proven optimality; only wall-clock constants
differ.  The pure-Python branch-and-bound solver
(:mod:`repro.milp.branch_bound`) is the always-available fallback and the
cross-check oracle.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading
from typing import Iterator, Optional


from .model import IntegerProgram, Objective
from .solution import MilpSolution, SolveStatus

try:
    from scipy.optimize import LinearConstraint, milp as _scipy_milp
    from scipy.optimize import Bounds
except ImportError:  # pragma: no cover - SciPy is a declared dependency
    _scipy_milp = None

__all__ = ["HighsSolver", "default_solver"]


# The fd redirect below is process-global state, so overlapping solves
# (thread-pool batches) must not each save-and-restore fd 1 independently:
# interleaved restores would leave stdout pointing at /dev/null forever.
# A refcount under a lock makes the gag reentrant — the first solve in
# redirects, the last one out restores.
_gag_lock = threading.Lock()
_gag_depth = 0
_gag_saved_fd: Optional[int] = None


@contextlib.contextmanager
def _native_stdout_to_devnull() -> Iterator[None]:
    """Silence OS-level stdout (fd 1) for the duration of the block.

    The HiGHS C++ library prints a stray diagnostic line
    (``HighsMipSolverData::transformNewIntegerFeasibleSolution …``) on some
    instances, straight to the C ``stdout`` stream — below ``sys.stdout``,
    so neither ``disp=False`` nor ``contextlib.redirect_stdout`` can catch
    it.  Redirecting the file descriptor itself is the only reliable gag.
    Python-level output is flushed first so it cannot be swallowed.
    Reentrant and thread-safe: while any solve is in flight fd 1 stays on
    ``/dev/null``; the original descriptor returns when the last exits.
    The redirect is process-global, so stdout written by *other* threads
    during that window — including a concurrent ``verbose=True`` solve's
    log — is swallowed too; run verbose solves sequentially if their log
    matters.
    """
    global _gag_depth, _gag_saved_fd
    try:
        sys.stdout.flush()
    except (ValueError, OSError):  # pragma: no cover - stdout already closed
        pass
    with _gag_lock:
        if _gag_depth == 0:
            try:
                _gag_saved_fd = os.dup(1)
            except OSError:  # pragma: no cover - no usable fd 1
                _gag_saved_fd = None
            if _gag_saved_fd is not None:
                devnull = os.open(os.devnull, os.O_WRONLY)
                try:
                    os.dup2(devnull, 1)
                finally:
                    os.close(devnull)
        _gag_depth += 1
    try:
        yield
    finally:
        with _gag_lock:
            _gag_depth -= 1
            if _gag_depth == 0 and _gag_saved_fd is not None:
                os.dup2(_gag_saved_fd, 1)
                os.close(_gag_saved_fd)
                _gag_saved_fd = None


class HighsSolver:
    """Solve integer programs with SciPy's HiGHS MILP interface.

    Parameters
    ----------
    time_limit / mip_gap:
        Passed to the HiGHS options verbatim.
    verbose:
        ``False`` (default) keeps the solve completely silent: solver
        display stays off and HiGHS's stray native-stdout diagnostics are
        suppressed at the file-descriptor level.  ``True`` enables the
        solver log and leaves stdout alone.
    """

    def __init__(
        self,
        time_limit: Optional[float] = None,
        mip_gap: float = 0.0,
        verbose: bool = False,
    ) -> None:
        if _scipy_milp is None:  # pragma: no cover
            raise RuntimeError(
                "scipy.optimize.milp is unavailable; use BranchAndBoundSolver instead"
            )
        self.time_limit = time_limit
        self.mip_gap = mip_gap
        self.verbose = verbose

    def solve(
        self, program: IntegerProgram, objective: Optional[Objective] = None
    ) -> MilpSolution:
        """Solve the program (or one chosen objective of it) to optimality."""
        if objective is None:
            objective = program.objective
        c, a_ub, b_ub, lower, upper, integrality = program.dense_arrays(objective)

        constraints = []
        if a_ub.size:
            constraints.append(LinearConstraint(a_ub, ub=b_ub))
        options = {"mip_rel_gap": self.mip_gap, "disp": self.verbose}
        if self.time_limit is not None:
            options["time_limit"] = self.time_limit

        silencer = (
            contextlib.nullcontext() if self.verbose else _native_stdout_to_devnull()
        )
        with silencer:
            result = _scipy_milp(
                c=c,
                constraints=constraints,
                bounds=Bounds(lb=lower, ub=upper),
                integrality=integrality,
                options=options,
            )

        if result.status == 0 and result.x is not None:
            assignment = {
                name: float(result.x[i]) for i, name in enumerate(program.variable_order)
            }
            return MilpSolution(
                status=SolveStatus.OPTIMAL,
                objective_value=objective.value(assignment),
                assignment=assignment,
                backend="highs",
            )
        if result.status == 2:
            return MilpSolution(status=SolveStatus.INFEASIBLE, backend="highs")
        if result.status == 3:
            return MilpSolution(status=SolveStatus.UNBOUNDED, backend="highs")
        return MilpSolution(status=SolveStatus.ERROR, backend="highs")


def default_solver(prefer: str = "highs"):
    """Return the preferred available single-objective ILP solver.

    Parameters
    ----------
    prefer:
        ``"highs"`` (default) or ``"branch-and-bound"``.  When HiGHS is
        requested but SciPy's MILP interface is missing, the pure-Python
        branch-and-bound solver is returned instead.
    """
    if prefer == "highs" and _scipy_milp is not None:
        return HighsSolver()
    from .branch_bound import BranchAndBoundSolver

    return BranchAndBoundSolver()
