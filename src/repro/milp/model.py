"""A small modelling layer for (integer) linear programs.

The paper solves its DAG-like cost-damage problems by translating them into
(bi-objective) integer linear programs and handing them to Gurobi through
YALMIP (Section VII / X).  Neither tool is available here, so this package
provides the whole substrate from scratch:

* this module — the **model layer**: variables, linear expressions,
  constraints, objectives, and conversion to the dense/sparse arrays the
  solvers consume;
* :mod:`repro.milp.simplex` — a pure-Python/numpy two-phase simplex for LP
  relaxations;
* :mod:`repro.milp.branch_bound` — a 0/1 branch-and-bound ILP solver on top
  of either LP engine;
* :mod:`repro.milp.highs` — a backend that delegates to
  ``scipy.optimize.milp`` (the HiGHS solver shipped with SciPy);
* :mod:`repro.milp.biobjective` — an ε-constraint driver that enumerates the
  exact non-dominated set of a bi-objective ILP.

The model layer is deliberately tiny — just enough expressive power for the
formulations of Theorems 6 and 7 (binary variables, ``≤`` constraints, one
or two linear objectives) while staying readable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "VariableKind",
    "Variable",
    "LinearExpression",
    "Constraint",
    "ConstraintSense",
    "ObjectiveSense",
    "Objective",
    "IntegerProgram",
    "ModelError",
]


class ModelError(ValueError):
    """Raised when a model is malformed (unknown variables, empty objective…)."""


class VariableKind(enum.Enum):
    """The domain of a decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    Attributes
    ----------
    name:
        Unique identifier within the program.
    kind:
        Binary, general integer, or continuous.
    lower, upper:
        Bounds; binaries are implicitly clamped to ``[0, 1]``.
    """

    name: str
    kind: VariableKind = VariableKind.BINARY
    lower: float = 0.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("variable name must be non-empty")
        if self.lower > self.upper:
            raise ModelError(
                f"variable {self.name!r} has empty domain [{self.lower}, {self.upper}]"
            )

    @property
    def bounds(self) -> Tuple[float, float]:
        """Effective (lower, upper) bounds."""
        if self.kind is VariableKind.BINARY:
            return (max(0.0, self.lower), min(1.0, self.upper))
        return (self.lower, self.upper)

    @property
    def is_integral(self) -> bool:
        """``True`` for binary and integer variables."""
        return self.kind is not VariableKind.CONTINUOUS


class LinearExpression:
    """A linear expression ``Σ coeff_i · x_i + constant``."""

    __slots__ = ("coefficients", "constant")

    def __init__(
        self,
        coefficients: Optional[Mapping[str, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.coefficients: Dict[str, float] = {
            name: float(value)
            for name, value in (coefficients or {}).items()
            if value != 0.0
        }
        self.constant = float(constant)

    # -- construction -------------------------------------------------- #
    @classmethod
    def term(cls, variable: str, coefficient: float = 1.0) -> "LinearExpression":
        """A single-term expression ``coefficient · variable``."""
        return cls({variable: coefficient})

    @classmethod
    def sum_of(cls, terms: Mapping[str, float]) -> "LinearExpression":
        """An expression from a {variable: coefficient} mapping."""
        return cls(dict(terms))

    # -- arithmetic ------------------------------------------------------ #
    def __add__(self, other: "LinearExpression | float") -> "LinearExpression":
        if isinstance(other, (int, float)):
            return LinearExpression(self.coefficients, self.constant + other)
        merged = dict(self.coefficients)
        for name, value in other.coefficients.items():
            merged[name] = merged.get(name, 0.0) + value
        return LinearExpression(merged, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other: "LinearExpression | float") -> "LinearExpression":
        return self + (other * -1 if isinstance(other, LinearExpression) else -other)

    def __mul__(self, scalar: float) -> "LinearExpression":
        return LinearExpression(
            {name: value * scalar for name, value in self.coefficients.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Evaluate the expression at a (possibly partial) assignment.

        Missing variables count as zero, which matches the convention of the
        solvers (all variables have zero as a feasible anchor in our models).
        """
        return self.constant + sum(
            value * assignment.get(name, 0.0)
            for name, value in self.coefficients.items()
        )

    def variables(self) -> List[str]:
        """The variables appearing with nonzero coefficient."""
        return list(self.coefficients)

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{value:g}·{name}" for name, value in sorted(self.coefficients.items())
        )
        if self.constant:
            terms = f"{terms} + {self.constant:g}" if terms else f"{self.constant:g}"
        return f"LinearExpression({terms or '0'})"


class ConstraintSense(enum.Enum):
    """Direction of a linear constraint."""

    LESS_EQUAL = "<="
    GREATER_EQUAL = ">="
    EQUAL = "=="


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expression (≤ | ≥ | =) rhs``."""

    expression: LinearExpression
    sense: ConstraintSense
    rhs: float
    name: str = ""

    def as_less_equal(self) -> List[Tuple[LinearExpression, float]]:
        """Normalise to one or two ``expr ≤ rhs`` rows (used by the solvers)."""
        if self.sense is ConstraintSense.LESS_EQUAL:
            return [(self.expression, self.rhs)]
        if self.sense is ConstraintSense.GREATER_EQUAL:
            return [(self.expression * -1.0, -self.rhs)]
        return [
            (self.expression, self.rhs),
            (self.expression * -1.0, -self.rhs),
        ]

    def is_satisfied(self, assignment: Mapping[str, float], tolerance: float = 1e-7) -> bool:
        """Check the constraint at an assignment."""
        value = self.expression.evaluate(assignment)
        if self.sense is ConstraintSense.LESS_EQUAL:
            return value <= self.rhs + tolerance
        if self.sense is ConstraintSense.GREATER_EQUAL:
            return value + tolerance >= self.rhs
        return abs(value - self.rhs) <= tolerance


class ObjectiveSense(enum.Enum):
    """Whether an objective is minimised or maximised."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass(frozen=True)
class Objective:
    """A linear objective with a direction."""

    expression: LinearExpression
    sense: ObjectiveSense = ObjectiveSense.MINIMIZE
    name: str = ""

    def as_minimization(self) -> LinearExpression:
        """Return the expression to *minimise* (negated for MAXIMIZE)."""
        if self.sense is ObjectiveSense.MINIMIZE:
            return self.expression
        return self.expression * -1.0

    def value(self, assignment: Mapping[str, float]) -> float:
        """Evaluate the objective (in its own sense) at an assignment."""
        return self.expression.evaluate(assignment)


class IntegerProgram:
    """A (single- or multi-objective) integer linear program.

    The program owns its variables, constraints and objectives and can
    export itself as the dense arrays consumed by the solvers::

        minimise    c·x
        subject to  A_ub·x ≤ b_ub
                    lower ≤ x ≤ upper
                    x_i integral for integral variables
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._variables: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objectives: List[Objective] = []

    # -- building -------------------------------------------------------- #
    def add_variable(
        self,
        name: str,
        kind: VariableKind = VariableKind.BINARY,
        lower: float = 0.0,
        upper: float = 1.0,
    ) -> Variable:
        """Declare a new variable and return it."""
        if name in self._variables:
            raise ModelError(f"variable {name!r} already declared")
        variable = Variable(name=name, kind=kind, lower=lower, upper=upper)
        self._variables[name] = variable
        return variable

    def add_binary(self, name: str) -> Variable:
        """Declare a binary variable."""
        return self.add_variable(name, kind=VariableKind.BINARY)

    def add_constraint(
        self,
        expression: LinearExpression,
        sense: ConstraintSense,
        rhs: float,
        name: str = "",
    ) -> Constraint:
        """Add a linear constraint; unknown variables are rejected."""
        unknown = set(expression.variables()) - set(self._variables)
        if unknown:
            raise ModelError(f"constraint references unknown variables {sorted(unknown)!r}")
        constraint = Constraint(expression=expression, sense=sense, rhs=float(rhs), name=name)
        self._constraints.append(constraint)
        return constraint

    def add_less_equal(self, expression: LinearExpression, rhs: float, name: str = "") -> Constraint:
        """Convenience wrapper for ``expression ≤ rhs``."""
        return self.add_constraint(expression, ConstraintSense.LESS_EQUAL, rhs, name)

    def add_objective(
        self,
        expression: LinearExpression,
        sense: ObjectiveSense = ObjectiveSense.MINIMIZE,
        name: str = "",
    ) -> Objective:
        """Add an objective (programs may carry one or two)."""
        unknown = set(expression.variables()) - set(self._variables)
        if unknown:
            raise ModelError(f"objective references unknown variables {sorted(unknown)!r}")
        objective = Objective(expression=expression, sense=sense, name=name)
        self._objectives.append(objective)
        return objective

    # -- introspection ----------------------------------------------------- #
    @property
    def variables(self) -> Mapping[str, Variable]:
        """Declared variables by name."""
        return dict(self._variables)

    @property
    def variable_order(self) -> List[str]:
        """Variable names in declaration order (the column order of exports)."""
        return list(self._variables)

    @property
    def constraints(self) -> Sequence[Constraint]:
        """The declared constraints."""
        return tuple(self._constraints)

    @property
    def objectives(self) -> Sequence[Objective]:
        """The declared objectives."""
        return tuple(self._objectives)

    @property
    def objective(self) -> Objective:
        """The unique objective; raises if there are zero or several."""
        if len(self._objectives) != 1:
            raise ModelError(
                f"expected exactly one objective, found {len(self._objectives)}"
            )
        return self._objectives[0]

    def is_feasible(self, assignment: Mapping[str, float], tolerance: float = 1e-7) -> bool:
        """Check bounds, integrality and all constraints at an assignment."""
        for name, variable in self._variables.items():
            value = assignment.get(name, 0.0)
            lower, upper = variable.bounds
            if value < lower - tolerance or value > upper + tolerance:
                return False
            if variable.is_integral and abs(value - round(value)) > tolerance:
                return False
        return all(c.is_satisfied(assignment, tolerance) for c in self._constraints)

    # -- export ------------------------------------------------------------ #
    def dense_arrays(
        self, objective: Optional[Objective] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Export ``(c, A_ub, b_ub, lower, upper, integrality)``.

        ``c`` is the minimisation vector of ``objective`` (defaults to the
        program's unique objective); every constraint is normalised to
        ``≤`` rows.  The constant term of the objective is dropped (callers
        re-add it when reporting objective values).
        """
        if objective is None:
            objective = self.objective
        order = self.variable_order
        index = {name: i for i, name in enumerate(order)}
        n = len(order)

        minimised = objective.as_minimization()
        c = np.zeros(n)
        for name, value in minimised.coefficients.items():
            c[index[name]] = value

        rows: List[np.ndarray] = []
        rhs: List[float] = []
        for constraint in self._constraints:
            for expression, bound in constraint.as_less_equal():
                row = np.zeros(n)
                for name, value in expression.coefficients.items():
                    row[index[name]] = value
                rows.append(row)
                rhs.append(bound - expression.constant)
        a_ub = np.vstack(rows) if rows else np.zeros((0, n))
        b_ub = np.asarray(rhs, dtype=float)

        lower = np.zeros(n)
        upper = np.zeros(n)
        integrality = np.zeros(n)
        for name, variable in self._variables.items():
            i = index[name]
            lower[i], upper[i] = variable.bounds
            integrality[i] = 1.0 if variable.is_integral else 0.0
        return c, a_ub, b_ub, lower, upper, integrality

    def summary(self) -> str:
        """One-line human-readable description of the program size."""
        binaries = sum(1 for v in self._variables.values() if v.kind is VariableKind.BINARY)
        return (
            f"IntegerProgram({self.name or 'unnamed'}: "
            f"{len(self._variables)} variables ({binaries} binary), "
            f"{len(self._constraints)} constraints, "
            f"{len(self._objectives)} objective(s))"
        )
