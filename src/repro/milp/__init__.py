"""Integer-linear-programming substrate.

Replaces the paper's Gurobi + YALMIP stack: a small model layer, a HiGHS
backend (via SciPy), a from-scratch branch-and-bound ILP solver with an
optional pure-Python simplex engine, and an ε-constraint bi-objective
driver.
"""

from .biobjective import (
    BiobjectivePoint,
    BiobjectiveResult,
    EpsilonConstraintSolver,
    infer_step,
)
from .branch_bound import BranchAndBoundSolver
from .highs import HighsSolver, default_solver
from .model import (
    Constraint,
    ConstraintSense,
    IntegerProgram,
    LinearExpression,
    ModelError,
    Objective,
    ObjectiveSense,
    Variable,
    VariableKind,
)
from .simplex import SimplexResult, solve_linear_program
from .solution import MilpSolution, SolveStatus

__all__ = [
    "BiobjectivePoint",
    "BiobjectiveResult",
    "BranchAndBoundSolver",
    "Constraint",
    "ConstraintSense",
    "EpsilonConstraintSolver",
    "HighsSolver",
    "IntegerProgram",
    "LinearExpression",
    "MilpSolution",
    "ModelError",
    "Objective",
    "ObjectiveSense",
    "SimplexResult",
    "SolveStatus",
    "Variable",
    "VariableKind",
    "default_solver",
    "infer_step",
    "solve_linear_program",
]
