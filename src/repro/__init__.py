"""Cost-damage analysis of attack trees.

A Python reproduction of *"Cost-damage analysis of attack trees"*
(Lopuhaä-Zwakenberg & Stoelinga, DSN 2023): exact algorithms for the
cost-damage Pareto front and the derived single-objective problems on
attack trees, in both deterministic and probabilistic settings, together
with the substrates the paper depends on (attack-tree data structures, an
ILP stack, case-study models, random workload generation) and the full
experiment harness of the paper's evaluation.

Quickstart
----------
>>> from repro import AttackTreeBuilder, CostDamageAnalyzer
>>> builder = AttackTreeBuilder()
>>> _ = builder.bas("ca", cost=1, label="cyberattack")
>>> _ = builder.bas("pb", cost=3, label="place bomb")
>>> _ = builder.bas("fd", cost=2, damage=10, label="force door")
>>> _ = builder.and_gate("dr", ["pb", "fd"], damage=100)
>>> _ = builder.or_gate("ps", ["ca", "dr"], damage=200)
>>> analyzer = CostDamageAnalyzer(builder.build_cd(root="ps"))
>>> analyzer.pareto_front().values()
[(0.0, 0.0), (1.0, 200.0), (3.0, 210.0), (5.0, 310.0)]
"""

from .attacktree import (
    AttackTree,
    AttackTreeBuilder,
    AttackTreeError,
    CostDamageAT,
    CostDamageProbAT,
    Node,
    NodeType,
)
from .attacktree import catalog
from .core import (
    CostDamageAnalyzer,
    Method,
    Problem,
    SolveResult,
    attack_cost,
    attack_damage,
    capability_matrix,
    solve,
)
from .pareto import ParetoFront, ParetoPoint

__version__ = "1.0.0"

__all__ = [
    "AttackTree",
    "AttackTreeBuilder",
    "AttackTreeError",
    "CostDamageAT",
    "CostDamageAnalyzer",
    "CostDamageProbAT",
    "Method",
    "Node",
    "NodeType",
    "ParetoFront",
    "ParetoPoint",
    "Problem",
    "SolveResult",
    "attack_cost",
    "attack_damage",
    "capability_matrix",
    "catalog",
    "solve",
    "__version__",
]
