"""Cost-damage analysis of attack trees.

A Python reproduction of *"Cost-damage analysis of attack trees"*
(Lopuhaä-Zwakenberg & Stoelinga, DSN 2023): exact algorithms for the
cost-damage Pareto front and the derived single-objective problems on
attack trees, in both deterministic and probabilistic settings, together
with the substrates the paper depends on (attack-tree data structures, an
ILP stack, case-study models, random workload generation) and the full
experiment harness of the paper's evaluation.

Analyses run on a pluggable engine (:mod:`repro.engine`): solver
implementations are *backends* in a capability-aware registry that encodes
Table I of the paper as data, and an :class:`AnalysisSession` provides
cached, batchable, JSON-round-trippable queries against one model.

Quickstart
----------
>>> from repro import AnalysisRequest, AnalysisSession, AttackTreeBuilder, Problem
>>> builder = AttackTreeBuilder()
>>> _ = builder.bas("ca", cost=1, label="cyberattack")
>>> _ = builder.bas("pb", cost=3, label="place bomb")
>>> _ = builder.bas("fd", cost=2, damage=10, label="force door")
>>> _ = builder.and_gate("dr", ["pb", "fd"], damage=100)
>>> _ = builder.or_gate("ps", ["ca", "dr"], damage=200)
>>> session = AnalysisSession(builder.build_cd(root="ps"))
>>> result = session.run(AnalysisRequest(Problem.CDPF))
>>> result.front.values()
[(0.0, 0.0), (1.0, 200.0), (3.0, 210.0), (5.0, 310.0)]
>>> result.backend
'bottom-up'
>>> [r.value for r in session.run_batch(
...     [AnalysisRequest(Problem.DGC, budget=2),
...      AnalysisRequest(Problem.CGD, threshold=300)])]
[200.0, 5.0]

Sessions cache by (model fingerprint, request), report wall time and the
resolved backend on every result, and accept extension backends
(``genetic``, ``prob-dag``, ``monte-carlo``) by name.

Backwards compatibility: the original entry points keep working —
``solve(model, problem, method=...)`` forwards to the engine (``method``
maps onto the backend of the same name), and :class:`CostDamageAnalyzer`
wraps a session behind its familiar question-oriented methods.  One
deliberate API break: ``CostDamageAnalyzer.damage_budget_curve`` now
returns :class:`BudgetDamagePoint` triples instead of ``(budget, damage)``
pairs, so that "no attack affordable at this budget" is distinguishable
from "the best affordable attack does zero damage" (previously both were
reported as ``0.0``).
"""

from .attacktree import (
    AttackTree,
    AttackTreeBuilder,
    AttackTreeError,
    CostDamageAT,
    CostDamageProbAT,
    Node,
    NodeType,
)
from .attacktree import catalog
from .core import (
    BudgetDamagePoint,
    CostDamageAnalyzer,
    Method,
    Problem,
    SolveResult,
    attack_cost,
    attack_damage,
    capability_matrix,
    solve,
)
from .engine import (
    AnalysisRequest,
    AnalysisResult,
    AnalysisSession,
    BackendRegistry,
    Capability,
    Setting,
    Shape,
    SolverBackend,
    default_registry,
    model_fingerprint,
    shared_registry,
)
from .pareto import ParetoFront, ParetoPoint

__version__ = "2.0.0"

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisSession",
    "AttackTree",
    "AttackTreeBuilder",
    "AttackTreeError",
    "BackendRegistry",
    "BudgetDamagePoint",
    "Capability",
    "CostDamageAT",
    "CostDamageAnalyzer",
    "CostDamageProbAT",
    "Method",
    "Node",
    "NodeType",
    "ParetoFront",
    "ParetoPoint",
    "Problem",
    "Setting",
    "Shape",
    "SolveResult",
    "SolverBackend",
    "attack_cost",
    "attack_damage",
    "capability_matrix",
    "catalog",
    "default_registry",
    "model_fingerprint",
    "shared_registry",
    "solve",
    "__version__",
]
