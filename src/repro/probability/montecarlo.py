"""Monte-Carlo estimation of expected damage.

The exact probabilistic semantics (:mod:`repro.probability.actualization`)
is linear-time for treelike ATs but exponential for DAG-like ATs.  This
module provides a simple unbiased Monte-Carlo estimator of ``d̂_E(x)`` that
works for *any* AT: sample actualized attacks by flipping an independent
coin per attempted BAS, evaluate the deterministic damage of each sample,
and average.

The estimator is used (a) to cross-validate the exact treelike recursion in
tests, and (b) by the probabilistic-DAG extension
(:mod:`repro.extensions.prob_dag`) where no exact polynomial method is known
(the paper leaves that case open).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..attacktree.attributes import CostDamageProbAT
from ..core.semantics import Attack, attack_damage, normalize_attack

__all__ = ["MonteCarloEstimate", "sample_actualization", "estimate_expected_damage"]


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Result of a Monte-Carlo expected-damage estimation.

    Attributes
    ----------
    mean:
        The sample mean (the estimate of ``d̂_E(x)``).
    standard_error:
        The standard error of the mean (sample std / sqrt(n)).
    samples:
        Number of samples drawn.
    """

    mean: float
    standard_error: float
    samples: int

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Return the ``mean ± z·SE`` interval (default 95%)."""
        return (self.mean - z * self.standard_error, self.mean + z * self.standard_error)

    def within(self, value: float, z: float = 3.0) -> bool:
        """Return ``True`` when ``value`` lies within ``z`` standard errors."""
        if self.standard_error == 0.0:
            return math.isclose(self.mean, value, rel_tol=1e-9, abs_tol=1e-9)
        return abs(self.mean - value) <= z * self.standard_error


def sample_actualization(
    cdpat: CostDamageProbAT, attack: Iterable[str], rng: random.Random
) -> Attack:
    """Draw one actualized attack ``Y_x`` by flipping a coin per attempted BAS."""
    attempted = normalize_attack(cdpat, attack)
    return frozenset(
        bas for bas in attempted if rng.random() < cdpat.probability[bas]
    )


def estimate_expected_damage(
    cdpat: CostDamageProbAT,
    attack: Iterable[str],
    samples: int = 10_000,
    rng: Optional[random.Random] = None,
) -> MonteCarloEstimate:
    """Estimate ``d̂_E(x)`` by Monte-Carlo sampling.

    Parameters
    ----------
    cdpat:
        The probabilistic model.
    attack:
        Attempted BASs.
    samples:
        Number of actualizations to draw.
    rng:
        Random source; defaults to a fixed-seed ``random.Random(0)`` so that
        results are reproducible unless the caller opts into fresh entropy.
    """
    if samples < 1:
        raise ValueError("samples must be positive")
    if rng is None:
        rng = random.Random(0)
    deterministic = cdpat.deterministic()
    total = 0.0
    total_squared = 0.0
    for _ in range(samples):
        outcome = sample_actualization(cdpat, attack, rng)
        damage = attack_damage(deterministic, outcome)
        total += damage
        total_squared += damage * damage
    mean = total / samples
    variance = max(total_squared / samples - mean * mean, 0.0)
    standard_error = math.sqrt(variance / samples)
    return MonteCarloEstimate(mean=mean, standard_error=standard_error, samples=samples)
