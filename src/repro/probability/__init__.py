"""Probabilistic attack semantics: actualizations, expected damage, Monte Carlo."""

from .actualization import (
    actualization_distribution,
    expected_damage,
    expected_damage_via_enumeration,
    reach_probabilities,
    reach_probabilities_exact,
    reach_probabilities_treelike,
)
from .montecarlo import (
    MonteCarloEstimate,
    estimate_expected_damage,
    sample_actualization,
)

__all__ = [
    "MonteCarloEstimate",
    "actualization_distribution",
    "estimate_expected_damage",
    "expected_damage",
    "expected_damage_via_enumeration",
    "reach_probabilities",
    "reach_probabilities_exact",
    "reach_probabilities_treelike",
    "sample_actualization",
]
