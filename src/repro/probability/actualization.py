"""Probabilistic attack semantics: actualized attacks and expected damage.

In the probabilistic setting (Section VIII) each attempted BAS succeeds
independently with probability ``p(v)``.  The *actualized attack* ``Y_x`` is
the random subset of the attempted BASs that actually succeed
(Definition 6); the metric of interest is the **expected damage**
``d̂_E(x) = E[d̂(Y_x)] = Σ_v PS(x, v)·d(v)`` where
``PS(x, v) = P(S(Y_x, v) = 1)`` is the probabilistic structure function.

For **treelike** ATs, ``PS`` can be computed bottom-up because the children
of a node depend on disjoint BAS sets and are therefore independent
(Equations (8)–(9)).  For **DAG-like** ATs that independence fails; this
module then falls back to exact enumeration over the ``2^{|x|}``
actualizations (adequate for the small attacks used in tests and as the
ground truth for the Monte-Carlo estimator in
:mod:`repro.probability.montecarlo`).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Tuple

from ..attacktree.attributes import CostDamageProbAT
from ..attacktree.node import NodeType
from ..core.semantics import Attack, attack_damage, normalize_attack

__all__ = [
    "actualization_distribution",
    "reach_probabilities_treelike",
    "reach_probabilities_exact",
    "reach_probabilities",
    "expected_damage",
    "expected_damage_via_enumeration",
]


def actualization_distribution(
    cdpat: CostDamageProbAT, attack: Iterable[str]
) -> Iterator[Tuple[Attack, float]]:
    """Yield every actualized attack ``y ⪯ x`` with its probability.

    The distribution of ``Y_x`` (Definition 6): each attempted BAS ``v``
    succeeds independently with probability ``p(v)``, so
    ``P(Y_x = y) = Π_{v∈x} p(v)^{y_v} (1 − p(v))^{1 − y_v}`` for ``y ⪯ x``.
    Outcomes with probability zero are still yielded (they carry weight 0 in
    any expectation), keeping the support predictable for tests.
    """
    attempted = sorted(normalize_attack(cdpat, attack))
    for outcome_bits in itertools.product([0, 1], repeat=len(attempted)):
        probability = 1.0
        succeeded = []
        for bas, bit in zip(attempted, outcome_bits):
            p = cdpat.probability[bas]
            if bit:
                probability *= p
                succeeded.append(bas)
            else:
                probability *= 1.0 - p
        yield frozenset(succeeded), probability


def reach_probabilities_treelike(
    cdpat: CostDamageProbAT, attack: Iterable[str]
) -> Dict[str, float]:
    """Compute ``PS(x, v)`` for every node of a **treelike** cdp-AT.

    Uses the bottom-up recursion of Equations (8)–(9): for an OR gate the
    children's reach events are independent, so
    ``PS = p₁ ⋆ p₂ ⋆ … = 1 − Π(1 − p_i)``; for an AND gate ``PS = Π p_i``.

    Raises ``ValueError`` when the tree is not treelike, because the
    independence argument (and hence the recursion) is unsound for shared
    subtrees.
    """
    tree = cdpat.tree
    if not tree.is_treelike:
        raise ValueError(
            "reach_probabilities_treelike requires a treelike AT; "
            "use reach_probabilities_exact for DAG-like ATs"
        )
    active = normalize_attack(cdpat, attack)
    result: Dict[str, float] = {}
    for name in tree.node_names:  # bottom-up topological order
        node = tree.node(name)
        if node.is_bas:
            result[name] = cdpat.probability[name] if name in active else 0.0
        elif node.type is NodeType.OR:
            failure = 1.0
            for child in node.children:
                failure *= 1.0 - result[child]
            result[name] = 1.0 - failure
        else:  # AND
            success = 1.0
            for child in node.children:
                success *= result[child]
            result[name] = success
    return result


def reach_probabilities_exact(
    cdpat: CostDamageProbAT, attack: Iterable[str]
) -> Dict[str, float]:
    """Compute ``PS(x, v)`` exactly by enumerating actualizations.

    Correct for arbitrary (DAG-like) ATs but exponential in ``|x|``; intended
    for validation and for the probabilistic-DAG extension on small models.
    """
    tree = cdpat.tree
    totals: Dict[str, float] = {name: 0.0 for name in tree.node_names}
    for outcome, probability in actualization_distribution(cdpat, attack):
        if probability == 0.0:
            continue
        reached = tree.structure_function(outcome)
        for name, hit in reached.items():
            if hit:
                totals[name] += probability
    return totals


def reach_probabilities(
    cdpat: CostDamageProbAT, attack: Iterable[str]
) -> Dict[str, float]:
    """Compute ``PS(x, v)`` with the best available exact method.

    Treelike ATs use the linear-time bottom-up recursion; DAG-like ATs fall
    back to exact enumeration over actualizations.
    """
    if cdpat.tree.is_treelike:
        return reach_probabilities_treelike(cdpat, attack)
    return reach_probabilities_exact(cdpat, attack)


def expected_damage(cdpat: CostDamageProbAT, attack: Iterable[str]) -> float:
    """The expected damage ``d̂_E(x) = Σ_v PS(x, v)·d(v)``."""
    probabilities = reach_probabilities(cdpat, attack)
    return sum(
        probabilities[node] * cdpat.damage[node] for node in cdpat.tree.node_names
    )


def expected_damage_via_enumeration(
    cdpat: CostDamageProbAT, attack: Iterable[str]
) -> float:
    """The expected damage computed directly from Definition 6.

    ``d̂_E(x) = Σ_{y ⪯ x} P(Y_x = y)·d̂(y)``.  Exponential in ``|x|``; used
    as an independent oracle in tests (it exercises a different code path
    from :func:`expected_damage`).
    """
    deterministic = cdpat.deterministic()
    total = 0.0
    for outcome, probability in actualization_distribution(cdpat, attack):
        if probability == 0.0:
            continue
        total += probability * attack_damage(deterministic, outcome)
    return total
