"""Text-mode plotting of cost-damage Pareto fronts.

The paper's Figures 3 and 6 are scatter/step plots of Pareto fronts.  This
module renders the same pictures as ASCII art so that fronts can be eyeballed
in a terminal, in CI logs and in EXPERIMENTS.md without a plotting stack.

The renderer draws the non-dominated points as ``●`` and — because the front
of a cost-damage problem is a step function (any budget between two optimal
costs buys the damage of the cheaper one) — the dominated staircase region
as ``·``.
"""

from __future__ import annotations

from typing import List

from .front import ParetoFront

__all__ = ["ascii_front", "compare_fronts"]


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map ``value`` in [low, high] to a cell index in [0, size-1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_front(
    front: ParetoFront,
    width: int = 60,
    height: int = 18,
    title: str = "",
    marker: str = "●",
) -> str:
    """Render a Pareto front as an ASCII scatter-with-staircase plot.

    Parameters
    ----------
    front:
        The front to draw.
    width, height:
        Plot area in character cells (excluding axes).
    title:
        Optional caption printed above the plot.
    marker:
        Character used for the Pareto points themselves.
    """
    values = front.values()
    if not values:
        return (title + "\n" if title else "") + "(empty front)"

    max_cost = max(cost for cost, _ in values) or 1.0
    max_damage = max(damage for _, damage in values) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    # Shade the dominated staircase: for each column the damage achievable
    # with that budget.
    for column in range(width):
        budget = max_cost * column / (width - 1) if width > 1 else max_cost
        achievable = front.max_damage_given_cost(budget)
        if achievable is None:
            continue
        top_row = _scale(achievable, 0.0, max_damage, height)
        for row in range(top_row + 1):
            grid[row][column] = "·"

    for cost, damage in values:
        column = _scale(cost, 0.0, max_cost, width)
        row = _scale(damage, 0.0, max_damage, height)
        grid[row][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{max_damage:g}"), len("0"))
    for row in range(height - 1, -1, -1):
        if row == height - 1:
            label = f"{max_damage:g}".rjust(label_width)
        elif row == 0:
            label = "0".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(grid[row]))
    lines.append(" " * label_width + "-" * (width + 2))
    axis = f"0{' ' * (width - len(f'{max_cost:g}') - 1)}{max_cost:g}"
    lines.append(" " * (label_width + 2) + axis)
    lines.append(" " * (label_width + 2) + "cost →  (damage ↑)")
    return "\n".join(lines)


def compare_fronts(
    exact: ParetoFront,
    approximate: ParetoFront,
    width: int = 60,
    height: int = 18,
    title: str = "",
) -> str:
    """Overlay an approximate front (``○``) on an exact one (``●``).

    Used by the genetic-approximation benchmark reports: points of the
    approximation that coincide with exact points render as ``●``.
    """
    exact_values = exact.values()
    approx_values = approximate.values()
    all_values = exact_values + approx_values
    if not all_values:
        return (title + "\n" if title else "") + "(empty fronts)"
    max_cost = max(cost for cost, _ in all_values) or 1.0
    max_damage = max(damage for _, damage in all_values) or 1.0

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for cost, damage in approx_values:
        column = _scale(cost, 0.0, max_cost, width)
        row = _scale(damage, 0.0, max_damage, height)
        grid[row][column] = "○"
    for cost, damage in exact_values:
        column = _scale(cost, 0.0, max_cost, width)
        row = _scale(damage, 0.0, max_damage, height)
        grid[row][column] = "●"

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height - 1, -1, -1):
        lines.append("|" + "".join(grid[row]))
    lines.append("-" * (width + 1))
    lines.append("● exact    ○ approximation   (cost →, damage ↑)")
    return "\n".join(lines)
