"""The cost-damage Pareto front as a first-class object.

A :class:`ParetoFront` is the answer to the CDPF / CEDPF problems: the set of
non-dominated ``(cost, damage)`` points, each optionally annotated with a
witness attack (the set of activated BASs).  The class offers the
single-objective queries of Equations (1) and (2) of the paper —
"most damage given a cost budget" and "least cost given a damage threshold" —
as well as comparison helpers used extensively by the test-suite to check
that independent solvers agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, List, Optional, Tuple

from .poset import (
    EPSILON,
    is_antichain_pairs,
    pareto_minimal_pairs,
)

__all__ = ["ParetoPoint", "ParetoFront"]


@dataclass(frozen=True, order=True)
class ParetoPoint:
    """One non-dominated point of a cost-damage Pareto front.

    Attributes
    ----------
    cost:
        Total attack cost ``ĉ(x)``.
    damage:
        Total (expected) damage ``d̂(x)`` or ``d̂_E(x)``.
    attack:
        A witness attack achieving this point, as a frozenset of BAS names;
        ``None`` when the producing algorithm only tracked values (e.g. the
        plain BILP solution before witness extraction).
    reaches_root:
        Whether the witness attack reaches the root node ("top" column of
        Fig. 6); ``None`` when unknown.
    """

    cost: float
    damage: float
    attack: Optional[FrozenSet[str]] = field(default=None, compare=False)
    reaches_root: Optional[bool] = field(default=None, compare=False)

    @property
    def value(self) -> Tuple[float, float]:
        """The bare ``(cost, damage)`` pair."""
        return (self.cost, self.damage)

    def __str__(self) -> str:
        witness = "" if self.attack is None else f" via {{{', '.join(sorted(self.attack))}}}"
        return f"(cost={self.cost:g}, damage={self.damage:g}){witness}"


class ParetoFront:
    """An immutable, sorted cost-damage Pareto front.

    Construction filters out dominated and duplicate points, so any iterable
    of candidate points can be passed; what is stored is always a strict
    antichain sorted by increasing cost (and therefore increasing damage).
    """

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[ParetoPoint]):
        minimal = pareto_minimal_pairs(list(points), key=lambda p: (p.cost, p.damage))
        self._points: Tuple[ParetoPoint, ...] = tuple(
            sorted(minimal, key=lambda p: (p.cost, p.damage))
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: Iterable[Tuple[float, float]]) -> "ParetoFront":
        """Build a front from bare ``(cost, damage)`` pairs."""
        return cls(ParetoPoint(cost=c, damage=d) for c, d in values)

    @classmethod
    def from_attacks(
        cls,
        evaluated: Iterable[Tuple[FrozenSet[str], float, float]],
        reaches_root: Optional[dict] = None,
    ) -> "ParetoFront":
        """Build a front from ``(attack, cost, damage)`` triples."""
        points = []
        for attack, cost, damage in evaluated:
            reached = None if reaches_root is None else reaches_root.get(attack)
            points.append(
                ParetoPoint(cost=cost, damage=damage, attack=frozenset(attack),
                            reaches_root=reached)
            )
        return cls(points)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ParetoPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> ParetoPoint:
        return self._points[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ParetoFront):
            return NotImplemented
        return self.values_equal(other)

    def __hash__(self) -> int:
        return hash(tuple((round(p.cost, 9), round(p.damage, 9)) for p in self._points))

    def __repr__(self) -> str:
        inner = ", ".join(f"({p.cost:g}, {p.damage:g})" for p in self._points)
        return f"ParetoFront([{inner}])"

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> Tuple[ParetoPoint, ...]:
        """The points of the front, sorted by increasing cost."""
        return self._points

    def values(self) -> List[Tuple[float, float]]:
        """The bare ``(cost, damage)`` pairs, sorted by increasing cost."""
        return [p.value for p in self._points]

    def costs(self) -> List[float]:
        """Cost coordinates, sorted increasingly."""
        return [p.cost for p in self._points]

    def damages(self) -> List[float]:
        """Damage coordinates, sorted increasingly."""
        return [p.damage for p in self._points]

    def max_damage_given_cost(self, budget: float) -> Optional[float]:
        """Equation (1): the largest damage achievable with cost ≤ ``budget``.

        Returns ``None`` when no point of the front is affordable (this can
        only happen for fronts that exclude the empty attack).
        """
        best: Optional[float] = None
        for point in self._points:
            if point.cost <= budget + EPSILON:
                best = point.damage if best is None else max(best, point.damage)
        return best

    def min_cost_given_damage(self, threshold: float) -> Optional[float]:
        """Equation (2): the least cost achieving damage ≥ ``threshold``.

        Returns ``None`` when the threshold exceeds the maximum achievable
        damage.
        """
        best: Optional[float] = None
        for point in self._points:
            if point.damage + EPSILON >= threshold:
                best = point.cost if best is None else min(best, point.cost)
        return best

    def best_attack_given_cost(self, budget: float) -> Optional[ParetoPoint]:
        """Return the most damaging affordable point (with its witness)."""
        affordable = [p for p in self._points if p.cost <= budget + EPSILON]
        if not affordable:
            return None
        return max(affordable, key=lambda p: p.damage)

    def cheapest_attack_given_damage(self, threshold: float) -> Optional[ParetoPoint]:
        """Return the cheapest point achieving the damage threshold."""
        sufficient = [p for p in self._points if p.damage + EPSILON >= threshold]
        if not sufficient:
            return None
        return min(sufficient, key=lambda p: p.cost)

    def dominates_point(self, cost: float, damage: float) -> bool:
        """Return ``True`` if some front point weakly dominates ``(cost, damage)``."""
        return any(
            p.cost <= cost + EPSILON and p.damage + EPSILON >= damage
            for p in self._points
        )

    # ------------------------------------------------------------------ #
    # set-level operations and validation
    # ------------------------------------------------------------------ #
    def merge(self, other: "ParetoFront") -> "ParetoFront":
        """Return the Pareto front of the union of both fronts."""
        return ParetoFront(list(self._points) + list(other.points))

    def restrict_to_budget(self, budget: float) -> "ParetoFront":
        """Return the sub-front of points with cost ≤ ``budget``."""
        return ParetoFront(p for p in self._points if p.cost <= budget + EPSILON)

    def is_consistent(self) -> bool:
        """Check the antichain and strict-sortedness invariants (used by tests).

        Consecutive points must be *strictly* separated by more than
        :data:`EPSILON` in both coordinates — equal-cost or equal-damage
        neighbours mean one of them is redundant or dominated.
        """
        values = self.values()
        if not is_antichain_pairs(values):
            return False
        return all(
            values[i][0] + EPSILON < values[i + 1][0]
            and values[i][1] + EPSILON < values[i + 1][1]
            for i in range(len(values) - 1)
        )

    def values_equal(self, other: "ParetoFront", tolerance: float = 1e-6) -> bool:
        """Compare the (cost, damage) values of two fronts up to a tolerance."""
        mine, theirs = self.values(), other.values()
        if len(mine) != len(theirs):
            return False
        return all(
            math.isclose(a[0], b[0], rel_tol=tolerance, abs_tol=tolerance)
            and math.isclose(a[1], b[1], rel_tol=tolerance, abs_tol=tolerance)
            for a, b in zip(mine, theirs)
        )

    def hypervolume(self, cost_bound: Optional[float] = None) -> float:
        """Area dominated by the front inside ``[0, cost_bound] × [0, max d]``.

        A scalar quality indicator used by the genetic-approximation
        extension to compare approximate fronts against the exact one.
        """
        if not self._points:
            return 0.0
        if cost_bound is None:
            cost_bound = max(p.cost for p in self._points)
        area = 0.0
        # Walk points in decreasing cost; each step contributes a rectangle.
        points = [p for p in self._points if p.cost <= cost_bound + EPSILON]
        if not points:
            return 0.0
        upper = cost_bound
        for point in sorted(points, key=lambda p: -p.cost):
            width = upper - point.cost
            if width > 0:
                area += width * point.damage
            upper = point.cost
        # Note: damage achieved *at* cost 0 contributes nothing extra.
        return area

    def table(self, header: bool = True) -> str:
        """Render the front as a plain-text table (used by the CLI/reports)."""
        lines = []
        if header:
            lines.append(f"{'cost':>12}  {'damage':>12}  {'top':>4}  attack")
        for point in self._points:
            reached = "-" if point.reaches_root is None else ("y" if point.reaches_root else "n")
            witness = (
                "" if point.attack is None else "{" + ", ".join(sorted(point.attack)) + "}"
            )
            lines.append(f"{point.cost:>12g}  {point.damage:>12g}  {reached:>4}  {witness}")
        return "\n".join(lines)
