"""Generic Pareto machinery: partial orders, minimisation, fronts, plotting."""

from .front import ParetoFront, ParetoPoint
from .plot import ascii_front, compare_fronts
from .poset import (
    EPSILON,
    dominates_pair,
    dominates_triple,
    is_antichain_pairs,
    merge_pair_sets,
    min_with_budget,
    pareto_minimal_pairs,
    pareto_minimal_triples,
    strictly_dominates_pair,
    strictly_dominates_triple,
)

__all__ = [
    "EPSILON",
    "ParetoFront",
    "ParetoPoint",
    "ascii_front",
    "compare_fronts",
    "dominates_pair",
    "dominates_triple",
    "is_antichain_pairs",
    "merge_pair_sets",
    "min_with_budget",
    "pareto_minimal_pairs",
    "pareto_minimal_triples",
    "strictly_dominates_pair",
    "strictly_dominates_triple",
]
