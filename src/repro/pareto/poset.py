"""Partial orders and Pareto minimisation.

The paper works in three ordered domains:

* the **attribute-pair domain** ``(R²≥0, ⊑)`` with
  ``(c, d) ⊑ (c', d')  iff  c ≤ c' and d ≥ d'`` — lower cost, higher damage
  is better (Section IV.A);
* the **deterministic attribute-triple domain** ``DTrip = R≥0 × R≥0 × B``
  ordered by ``(c, d, b) ⊑ (c', d', b') iff c ≤ c', d ≥ d', b ≥ b'``
  (Section VI);
* the **probabilistic attribute-triple domain**
  ``PTrip = R≥0 × R≥0 × [0, 1]`` with the same componentwise order
  (Section IX).

This module provides the orders and a generic ``pareto_minimal`` filter used
by every solver.  ``pareto_minimal`` corresponds to the paper's
``min_⪯ X = {x ∈ X | ∀x'. x' ⊀ x}``; :func:`min_with_budget` additionally
applies the cost-budget filter ``min_U``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Sequence, Tuple, TypeVar

__all__ = [
    "dominates_pair",
    "dominates_triple",
    "strictly_dominates_pair",
    "strictly_dominates_triple",
    "pareto_minimal_pairs",
    "pareto_minimal_triples",
    "min_with_budget",
    "is_antichain_pairs",
    "merge_pair_sets",
]

T = TypeVar("T")

CostDamage = Tuple[float, float]
Triple = Tuple[float, float, float]

#: Tolerance for floating-point comparisons throughout the Pareto machinery.
#: The paper works with exact rationals conceptually; a small symmetric
#: tolerance keeps the implementation robust against accumulation error.
EPSILON = 1e-9


def _leq(a: float, b: float) -> bool:
    """Return ``a ≤ b`` up to :data:`EPSILON`.

    All three tolerant comparisons are computed on the *difference* ``a - b``:
    floating-point subtraction of nearby values is exact (Sterbenz) or
    accurate to an ulp of the tiny result, whereas the ``a <= b + EPSILON``
    form is only accurate to an ulp of ``b`` — orders of magnitude coarser
    than ε — which makes ``_leq``/``_eq`` disagree on boundary points and
    admits pairs that strictly dominate each other.
    """
    return a - b <= EPSILON


def _geq(a: float, b: float) -> bool:
    """Return ``a ≥ b`` up to :data:`EPSILON` (see :func:`_leq`)."""
    return b - a <= EPSILON


def _eq(a: float, b: float) -> bool:
    """Return ``a ≈ b`` up to :data:`EPSILON` (see :func:`_leq`)."""
    return abs(a - b) <= EPSILON


def dominates_pair(left: CostDamage, right: CostDamage) -> bool:
    """Return ``left ⊑ right`` in the attribute-pair order (weak domination).

    ``(c, d) ⊑ (c', d')`` iff ``c ≤ c'`` and ``d ≥ d'``: ``left`` is at most
    as expensive and at least as damaging.
    """
    return _leq(left[0], right[0]) and _geq(left[1], right[1])


def strictly_dominates_pair(left: CostDamage, right: CostDamage) -> bool:
    """Return ``left ⊏ right``: weak domination that is not equality."""
    return dominates_pair(left, right) and not (
        _eq(left[0], right[0]) and _eq(left[1], right[1])
    )


def dominates_triple(left: Triple, right: Triple) -> bool:
    """Return ``left ⊑ right`` in the DTrip/PTrip order.

    ``(c, d, p) ⊑ (c', d', p')`` iff ``c ≤ c'``, ``d ≥ d'`` and ``p ≥ p'``.
    The third component is the activation bit (deterministic) or activation
    probability (probabilistic) of the current node: an attack with greater
    activation "potential" must be kept even if it costs more, because it may
    unlock damage higher up in the tree (Example 4).
    """
    return (
        _leq(left[0], right[0])
        and _geq(left[1], right[1])
        and _geq(left[2], right[2])
    )


def strictly_dominates_triple(left: Triple, right: Triple) -> bool:
    """Return ``left ⊏ right`` in the DTrip/PTrip order."""
    return dominates_triple(left, right) and not (
        _eq(left[0], right[0])
        and _eq(left[1], right[1])
        and _eq(left[2], right[2])
    )


def pareto_minimal_pairs(
    items: Iterable[T],
    key: Callable[[T], CostDamage],
) -> List[T]:
    """Return the Pareto-minimal items under the attribute-pair order.

    Implements the paper's ``min X = {x ∈ X | ∀x' ∈ X. x' ⊄ x}`` with the
    :data:`EPSILON`-tolerant strict order: an item is dropped exactly when
    *some input item* strictly dominates it.  Quantifying over all inputs
    (rather than over previously kept items) matters because ε-domination is
    not transitive: a chain of points each within tolerance of the next can
    otherwise leave a dominated point on the "front".

    Among surviving items whose values are ε-equal in both coordinates a
    single representative is kept, matching the paper's treatment of the
    front as a set of attribute values.  The result is sorted by
    (cost, damage) and any two kept values differ by more than ε in both
    coordinates, so the front is a strictly separated antichain.

    The sweep sorts once; dominators with cost beyond ε of the candidate are
    summarised by a monotone prefix maximum, and only the few points *within*
    ε of the candidate's cost are checked pairwise — ``O(k log k + k·w)``
    where ``w`` is the size of that ε-cost window (``w ≪ k`` in practice).
    """
    indexed = []
    for position, item in enumerate(items):
        cost, damage = key(item)
        indexed.append((cost, damage, position, item))
    if not indexed:
        return []
    indexed.sort(key=lambda row: (row[0], row[1], row[2]))
    n = len(indexed)
    result: List[T] = []
    last_kept: CostDamage = (-math.inf, -math.inf)
    have_kept = False
    # ``behind`` consumes points strictly cheaper by more than ε (they
    # dominate anything with at most their damage + ε); points between
    # ``behind`` and ``ahead`` are within ε of the candidate's cost and are
    # checked with the exact pairwise predicate so the filter agrees with
    # :func:`strictly_dominates_pair` bit-for-bit.  Both windows advance
    # monotonically because costs are processed in sorted order.
    ahead = behind = 0
    max_damage_far = -math.inf
    for i in range(n):
        cost, damage, _position, item = indexed[i]
        while ahead < n and indexed[ahead][0] - cost <= EPSILON:
            ahead += 1
        while behind < n and cost - indexed[behind][0] > EPSILON:
            if indexed[behind][1] > max_damage_far:
                max_damage_far = indexed[behind][1]
            behind += 1
        if damage - max_damage_far <= EPSILON:
            continue  # strictly cheaper input with at least this damage
        value = (cost, damage)
        if any(
            strictly_dominates_pair((indexed[j][0], indexed[j][1]), value)
            for j in range(behind, ahead)
        ):
            continue  # dominated from within the ε-cost window
        if have_kept and _eq(cost, last_kept[0]) and _eq(damage, last_kept[1]):
            continue  # duplicate attribute value (up to tolerance)
        result.append(item)
        last_kept = value
        have_kept = True
    return result


def pareto_minimal_triples(
    items: Iterable[T],
    key: Callable[[T], Triple],
) -> List[T]:
    """Return the Pareto-minimal items under the DTrip/PTrip order.

    As with :func:`pareto_minimal_pairs`, an item is dropped exactly when
    some *input* item strictly ε-dominates it (the paper's ``min``), and a
    single representative is kept among ε-equal survivors.  Dominators can
    only have cost ≤ the candidate's cost + ε, so sorting by cost bounds the
    scan; this is ``O(k·w)`` where ``w`` is the size of that cost window
    (``w ≪ k`` in practice).
    """
    indexed = [(key(item), item) for item in items]
    # Sort by cost ascending, then damage descending, then activation
    # descending so potential dominators precede the points they dominate.
    indexed.sort(key=lambda pair: (pair[0][0], -pair[0][1], -pair[0][2]))
    values = [value for value, _ in indexed]
    n = len(values)
    kept_values: List[Triple] = []
    result: List[T] = []
    for i, (value, item) in enumerate(indexed):
        dominated = False
        for j in range(n):
            if values[j][0] - value[0] > EPSILON:
                break  # sorted by cost: no later point can dominate
            if j != i and strictly_dominates_triple(values[j], value):
                dominated = True
                break
        if dominated:
            continue
        duplicate = False
        for kept in reversed(kept_values):
            if value[0] - kept[0] > EPSILON:
                break
            if _eq(kept[0], value[0]) and _eq(kept[1], value[1]) and _eq(kept[2], value[2]):
                duplicate = True
                break
        if duplicate:
            continue
        kept_values.append(value)
        result.append(item)
    return result


def min_with_budget(
    items: Iterable[T],
    key: Callable[[T], Triple],
    budget: float = math.inf,
) -> List[T]:
    """The paper's ``min_U``: drop items over the cost budget, then Pareto-filter.

    Parameters
    ----------
    items:
        Candidate items (attacks with attribute triples).
    key:
        Maps an item to its ``(cost, damage, activation)`` triple.
    budget:
        The cost budget ``U``; ``math.inf`` disables the filter (the CDPF
        case).
    """
    affordable = [item for item in items if key(item)[0] <= budget + EPSILON]
    return pareto_minimal_triples(affordable, key)


def is_antichain_pairs(values: Sequence[CostDamage]) -> bool:
    """Return ``True`` when no value strictly dominates another.

    Used by tests and by :class:`repro.pareto.front.ParetoFront` validation.
    """
    for i, left in enumerate(values):
        for j, right in enumerate(values):
            if i != j and strictly_dominates_pair(left, right):
                return False
    return True


def merge_pair_sets(*sets: Iterable[CostDamage]) -> List[CostDamage]:
    """Merge several cost-damage point sets into one Pareto-minimal set."""
    combined: List[CostDamage] = []
    for group in sets:
        combined.extend(group)
    return pareto_minimal_pairs(combined, key=lambda value: value)
