"""Partial orders and Pareto minimisation.

The paper works in three ordered domains:

* the **attribute-pair domain** ``(R²≥0, ⊑)`` with
  ``(c, d) ⊑ (c', d')  iff  c ≤ c' and d ≥ d'`` — lower cost, higher damage
  is better (Section IV.A);
* the **deterministic attribute-triple domain** ``DTrip = R≥0 × R≥0 × B``
  ordered by ``(c, d, b) ⊑ (c', d', b') iff c ≤ c', d ≥ d', b ≥ b'``
  (Section VI);
* the **probabilistic attribute-triple domain**
  ``PTrip = R≥0 × R≥0 × [0, 1]`` with the same componentwise order
  (Section IX).

This module provides the orders and a generic ``pareto_minimal`` filter used
by every solver.  ``pareto_minimal`` corresponds to the paper's
``min_⪯ X = {x ∈ X | ∀x'. x' ⊀ x}``; :func:`min_with_budget` additionally
applies the cost-budget filter ``min_U``.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "dominates_pair",
    "dominates_triple",
    "strictly_dominates_pair",
    "strictly_dominates_triple",
    "pareto_minimal_pairs",
    "pareto_minimal_triples",
    "min_with_budget",
    "is_antichain_pairs",
    "merge_pair_sets",
]

T = TypeVar("T")

CostDamage = Tuple[float, float]
Triple = Tuple[float, float, float]

#: Tolerance for floating-point comparisons throughout the Pareto machinery.
#: The paper works with exact rationals conceptually; a small symmetric
#: tolerance keeps the implementation robust against accumulation error.
EPSILON = 1e-9


def _leq(a: float, b: float) -> bool:
    """Return ``a ≤ b`` up to :data:`EPSILON`."""
    return a <= b + EPSILON


def _geq(a: float, b: float) -> bool:
    """Return ``a ≥ b`` up to :data:`EPSILON`."""
    return a + EPSILON >= b


def _eq(a: float, b: float) -> bool:
    """Return ``a ≈ b`` up to :data:`EPSILON`."""
    return math.isclose(a, b, rel_tol=0.0, abs_tol=EPSILON)


def dominates_pair(left: CostDamage, right: CostDamage) -> bool:
    """Return ``left ⊑ right`` in the attribute-pair order (weak domination).

    ``(c, d) ⊑ (c', d')`` iff ``c ≤ c'`` and ``d ≥ d'``: ``left`` is at most
    as expensive and at least as damaging.
    """
    return _leq(left[0], right[0]) and _geq(left[1], right[1])


def strictly_dominates_pair(left: CostDamage, right: CostDamage) -> bool:
    """Return ``left ⊏ right``: weak domination that is not equality."""
    return dominates_pair(left, right) and not (
        _eq(left[0], right[0]) and _eq(left[1], right[1])
    )


def dominates_triple(left: Triple, right: Triple) -> bool:
    """Return ``left ⊑ right`` in the DTrip/PTrip order.

    ``(c, d, p) ⊑ (c', d', p')`` iff ``c ≤ c'``, ``d ≥ d'`` and ``p ≥ p'``.
    The third component is the activation bit (deterministic) or activation
    probability (probabilistic) of the current node: an attack with greater
    activation "potential" must be kept even if it costs more, because it may
    unlock damage higher up in the tree (Example 4).
    """
    return (
        _leq(left[0], right[0])
        and _geq(left[1], right[1])
        and _geq(left[2], right[2])
    )


def strictly_dominates_triple(left: Triple, right: Triple) -> bool:
    """Return ``left ⊏ right`` in the DTrip/PTrip order."""
    return dominates_triple(left, right) and not (
        _eq(left[0], right[0])
        and _eq(left[1], right[1])
        and _eq(left[2], right[2])
    )


def pareto_minimal_pairs(
    items: Iterable[T],
    key: Callable[[T], CostDamage],
) -> List[T]:
    """Return the Pareto-minimal items under the attribute-pair order.

    Among items whose key is equal (up to tolerance) a single representative
    is kept — the first one encountered — matching the paper's treatment of
    the Pareto front as a set of attribute values.

    The implementation sorts by (cost asc, damage desc) and sweeps once,
    which is ``O(k log k)`` for ``k`` items instead of the naive ``O(k²)``.
    """
    indexed = [(key(item), item) for item in items]
    indexed.sort(key=lambda pair: (pair[0][0], -pair[0][1]))
    result: List[T] = []
    kept_values: List[CostDamage] = []
    best_damage = -math.inf
    for value, item in indexed:
        if kept_values and _eq(value[0], kept_values[-1][0]) and _eq(value[1], kept_values[-1][1]):
            continue  # duplicate attribute value
        if value[1] > best_damage + EPSILON:
            if kept_values and _leq(value[0], kept_values[-1][0]):
                # Same cost (up to tolerance) but strictly more damage: the
                # previously kept point is dominated — replace it.
                kept_values.pop()
                result.pop()
            result.append(item)
            kept_values.append(value)
            best_damage = value[1]
    return result


def pareto_minimal_triples(
    items: Iterable[T],
    key: Callable[[T], Triple],
) -> List[T]:
    """Return the Pareto-minimal items under the DTrip/PTrip order.

    With three objectives a single sweep no longer suffices; we sort by cost
    and keep a staircase of undominated (damage, activation) pairs.  This is
    ``O(k·f)`` where ``f`` is the front size — the dominant cost in practice
    is ``f ≪ k``.
    """
    indexed = [(key(item), item) for item in items]
    # Sort by cost ascending, then damage descending, then activation descending
    # so that earlier items can only dominate later ones.
    indexed.sort(key=lambda pair: (pair[0][0], -pair[0][1], -pair[0][2]))
    kept_values: List[Triple] = []
    result: List[T] = []
    for value, item in indexed:
        dominated = False
        for kept in kept_values:
            if dominates_triple(kept, value):
                dominated = True
                break
        if not dominated:
            kept_values.append(value)
            result.append(item)
    return result


def min_with_budget(
    items: Iterable[T],
    key: Callable[[T], Triple],
    budget: float = math.inf,
) -> List[T]:
    """The paper's ``min_U``: drop items over the cost budget, then Pareto-filter.

    Parameters
    ----------
    items:
        Candidate items (attacks with attribute triples).
    key:
        Maps an item to its ``(cost, damage, activation)`` triple.
    budget:
        The cost budget ``U``; ``math.inf`` disables the filter (the CDPF
        case).
    """
    affordable = [item for item in items if key(item)[0] <= budget + EPSILON]
    return pareto_minimal_triples(affordable, key)


def is_antichain_pairs(values: Sequence[CostDamage]) -> bool:
    """Return ``True`` when no value strictly dominates another.

    Used by tests and by :class:`repro.pareto.front.ParetoFront` validation.
    """
    for i, left in enumerate(values):
        for j, right in enumerate(values):
            if i != j and strictly_dominates_pair(left, right):
                return False
    return True


def merge_pair_sets(*sets: Iterable[CostDamage]) -> List[CostDamage]:
    """Merge several cost-damage point sets into one Pareto-minimal set."""
    combined: List[CostDamage] = []
    for group in sets:
        combined.extend(group)
    return pareto_minimal_pairs(combined, key=lambda value: value)
