"""Span-based tracing over ``contextvars``, with cross-host propagation.

A *trace* is one logical operation (an ``atcd dist run``, a service job)
identified by a 32-hex-char trace id; a *span* is one timed step inside
it (a solve, an HTTP request, a worker task) with its own 16-hex-char
span id and a parent span id.  The ambient trace context lives in a
``contextvars.ContextVar``, so spans nest correctly across threads
spawned with ``contextvars.copy_context`` and are simply absent where
nothing installed one — every instrumentation point degrades to a no-op.

Crossing process boundaries:

* **HTTP**: clients send ``X-Trace-Context: <trace_id>-<span_id>``
  (:func:`traceparent_header` / :func:`parse_traceparent`); servers also
  accept a bare ``X-Request-Id`` as a trace seed so existing clients
  participate without knowing about tracing.
* **Queue payloads**: :func:`inject_context` returns a small dict that
  coordinators/services embed under the task payload's ``"trace"`` key;
  workers hand it to :func:`extract_context` so their spans parent the
  submission that created them.

Finished spans go to process-global exporters (:func:`add_exporter`);
:class:`NdjsonSpanExporter` writes one JSON object per line, the
``--trace-out PATH|-`` format consumed offline.  With no exporter
installed, ``span()`` costs two ``ContextVar`` operations and a clock
read.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import re
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, TextIO

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "Span",
    "span",
    "current_context",
    "activate_context",
    "new_trace_id",
    "new_span_id",
    "normalize_trace_id",
    "inject_context",
    "extract_context",
    "traceparent_header",
    "parse_traceparent",
    "add_exporter",
    "remove_exporter",
    "clear_exporters",
    "NdjsonSpanExporter",
    "open_trace_output",
]

TRACE_HEADER = "X-Trace-Context"

_HEX_RE = re.compile(r"^[0-9a-f]{8,64}$")


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def normalize_trace_id(value: object) -> Optional[str]:
    """Coerce an externally supplied id (e.g. ``X-Request-Id``) to a
    trace id, or ``None`` if it isn't plausibly one.

    Anything hex-ish between 8 and 64 chars is accepted — request ids
    are 12 hex chars and make perfectly good trace seeds, which is how
    clients that only know about request ids still get linked traces.
    """
    if not isinstance(value, str):
        return None
    candidate = value.strip().lower()
    if not _HEX_RE.match(candidate):
        return None
    return candidate


@dataclass(frozen=True)
class TraceContext:
    """The ambient (trace id, active span id) pair."""

    trace_id: str
    span_id: str


_current: "contextvars.ContextVar[Optional[TraceContext]]" = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def current_context() -> Optional[TraceContext]:
    return _current.get()


@contextlib.contextmanager
def activate_context(context: Optional[TraceContext]) -> Iterator[None]:
    """Install a remote parent context (from a header or payload) for the
    duration of the block; ``None`` deactivates tracing inside it."""
    token = _current.set(context)
    try:
        yield
    finally:
        _current.reset(token)


@dataclass
class Span:
    """One finished, timed step of a trace (exporters receive these)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_unix: float
    duration_seconds: float = 0.0
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration_seconds,
            "status": self.status,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


_exporters_lock = threading.Lock()
_exporters: List[object] = []


def add_exporter(exporter: object) -> None:
    """Register a callable (or object with ``.export(span)``) that
    receives every finished :class:`Span` in this process."""
    with _exporters_lock:
        _exporters.append(exporter)


def remove_exporter(exporter: object) -> None:
    with _exporters_lock:
        try:
            _exporters.remove(exporter)
        except ValueError:
            pass


def clear_exporters() -> None:
    with _exporters_lock:
        _exporters.clear()


def _export(finished: Span) -> None:
    with _exporters_lock:
        exporters = list(_exporters)
    for exporter in exporters:
        try:
            export = getattr(exporter, "export", exporter)
            export(finished)  # type: ignore[operator]
        # staticcheck: allow-broad-except(exporters are user-supplied callables; telemetry must never take down the operation it observes)
        except Exception:
            pass


@contextlib.contextmanager
def span(
    name: str,
    attrs: Optional[Mapping[str, object]] = None,
) -> Iterator[Span]:
    """Time a block as one span of the ambient trace.

    Parents to the current context; with no ambient trace, starts a new
    one (so top-level entry points — a CLI run, an HTTP request — root a
    trace implicitly and everything beneath them nests).  The yielded
    :class:`Span` is live: callers may add ``attrs`` to it.  An
    exception inside the block marks ``status="error"`` (recording the
    exception type) and re-raises.
    """
    parent = _current.get()
    if parent is None:
        trace_id, parent_id = new_trace_id(), None
    else:
        trace_id, parent_id = parent.trace_id, parent.span_id
    current = Span(
        trace_id=trace_id,
        span_id=new_span_id(),
        parent_id=parent_id,
        name=str(name),
        start_unix=time.time(),
        attrs=dict(attrs) if attrs else {},
    )
    token = _current.set(TraceContext(trace_id, current.span_id))
    started = time.perf_counter()
    try:
        yield current
    except BaseException as error:
        current.status = "error"
        current.attrs.setdefault("error", type(error).__name__)
        raise
    finally:
        current.duration_seconds = time.perf_counter() - started
        _current.reset(token)
        _export(current)


def inject_context() -> Optional[Dict[str, str]]:
    """The ambient context as a payload-embeddable dict (or ``None``)."""
    context = _current.get()
    if context is None:
        return None
    return {"trace_id": context.trace_id, "parent_span_id": context.span_id}


def extract_context(carrier: object) -> Optional[TraceContext]:
    """Rebuild a :class:`TraceContext` from :func:`inject_context` output
    (tolerates arbitrary junk — returns ``None`` rather than raising)."""
    if not isinstance(carrier, Mapping):
        return None
    trace_id = normalize_trace_id(carrier.get("trace_id"))
    if trace_id is None:
        return None
    parent = carrier.get("parent_span_id")
    span_id = normalize_trace_id(parent) or new_span_id()
    return TraceContext(trace_id=trace_id, span_id=span_id)


def traceparent_header() -> Optional[str]:
    """The ambient context as an ``X-Trace-Context`` value (or ``None``)."""
    context = _current.get()
    if context is None:
        return None
    return f"{context.trace_id}-{context.span_id}"


def parse_traceparent(value: object) -> Optional[TraceContext]:
    """Parse an ``X-Trace-Context`` header (``<trace_id>-<span_id>``)."""
    if not isinstance(value, str) or "-" not in value:
        return None
    trace_part, _, span_part = value.strip().partition("-")
    trace_id = normalize_trace_id(trace_part)
    span_id = normalize_trace_id(span_part)
    if trace_id is None or span_id is None:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id)


class NdjsonSpanExporter:
    """Write each finished span as one JSON line (thread-safe)."""

    def __init__(self, stream: TextIO, close_stream: bool = False) -> None:
        self._stream = stream
        self._close_stream = close_stream
        self._lock = threading.Lock()

    def export(self, finished: Span) -> None:
        line = json.dumps(finished.to_dict(), sort_keys=True, default=str)
        with self._lock:
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        with self._lock:
            if self._close_stream:
                self._stream.close()


def open_trace_output(spec: str) -> NdjsonSpanExporter:
    """Build (and register) an exporter for a ``--trace-out PATH|-`` spec.

    ``-`` means stderr — stdout stays reserved for command output.  File
    paths are opened in append mode so several worker processes sharing
    one ``--trace-out`` file interleave whole lines instead of
    truncating each other.
    """
    import sys

    if spec == "-":
        exporter = NdjsonSpanExporter(sys.stderr)
    else:
        exporter = NdjsonSpanExporter(
            open(spec, "a", encoding="utf-8"), close_stream=True
        )
    add_exporter(exporter)
    return exporter
