"""repro.obs — the stdlib-only observability layer.

Three core pieces, wired through every runtime layer:

* :mod:`repro.obs.metrics` — thread-safe labeled counters / gauges /
  histograms in a process-local registry, with JSON snapshots that merge
  across processes (workers publish theirs through queue metadata).
* :mod:`repro.obs.trace` — span-based tracing on ``contextvars``; trace
  ids propagate over HTTP headers and inside queue task payloads, and
  finished spans export as NDJSON (``--trace-out PATH|-``).
* :mod:`repro.obs.promtext` — Prometheus text-format (v0.0.4) exposition
  of a snapshot, served as ``GET /metrics`` by ``atcd serve`` and
  ``atcd api``, plus a small parser for reading scrapes back.

:mod:`repro.obs.families` is the catalog of every metric name the
runtime emits; see DESIGN.md's "Observability" section for the contract.
"""

from . import families  # noqa: F401  (re-exported as a namespace)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    reset_registry,
    set_registry,
)
from .promtext import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from .promtext import parse as parse_prometheus
from .promtext import render as render_prometheus
from .scrape import (
    WORKER_METRICS_META_PREFIX,
    render_fleet_metrics,
    worker_snapshots,
)
from .trace import (
    TRACE_HEADER,
    NdjsonSpanExporter,
    Span,
    TraceContext,
    activate_context,
    add_exporter,
    clear_exporters,
    current_context,
    extract_context,
    inject_context,
    new_trace_id,
    normalize_trace_id,
    open_trace_output,
    parse_traceparent,
    remove_exporter,
    span,
    traceparent_header,
)

__all__ = [
    "families",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "reset_registry",
    "merge_snapshots",
    "PROMETHEUS_CONTENT_TYPE",
    "render_prometheus",
    "parse_prometheus",
    "WORKER_METRICS_META_PREFIX",
    "render_fleet_metrics",
    "worker_snapshots",
    "TRACE_HEADER",
    "TraceContext",
    "Span",
    "span",
    "current_context",
    "activate_context",
    "new_trace_id",
    "normalize_trace_id",
    "inject_context",
    "extract_context",
    "traceparent_header",
    "parse_traceparent",
    "add_exporter",
    "remove_exporter",
    "clear_exporters",
    "NdjsonSpanExporter",
    "open_trace_output",
]
