"""The catalog of every metric family the runtime emits.

One module owns all names, help strings and label sets so that (a) the
DESIGN.md catalog has a single source of truth, (b) two layers can't
register the same name with different shapes, and (c) servers can
pre-register everything (:func:`ensure_all`) so ``GET /metrics`` exposes
each family's ``# TYPE`` line even before the first event — scrapers and
the CI smoke assertions see a stable schema from request one.

Label cardinality rules (enforced by convention, documented here):
values must come from *small closed sets* — backend names, task kinds,
route templates, outcome enums, registered tenants.  Never label by
task id, job id, request id or fingerprint.
"""

from __future__ import annotations

from typing import Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry

__all__ = [
    "ensure_all",
    "solve_seconds",
    "session_cache_total",
    "store_lookups_total",
    "store_writes_total",
    "store_written_bytes_total",
    "store_evictions_total",
    "store_entries",
    "store_bytes",
    "queue_ops_total",
    "queue_tasks",
    "queue_pruned_total",
    "worker_task_seconds",
    "worker_tasks_total",
    "worker_heartbeats_total",
    "worker_interrupted_total",
    "http_requests_total",
    "http_request_seconds",
    "service_jobs_total",
    "service_requests_total",
    "service_rejections_total",
]

# Sub-second HTTP handling up to multi-second MILP solves.
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


def _registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    return registry if registry is not None else get_registry()


# --- engine ---------------------------------------------------------------

def solve_seconds(registry: Optional[MetricsRegistry] = None) -> Histogram:
    """Backend solve latency (cache misses only — the actual compute)."""
    return _registry(registry).histogram(
        "atcd_solve_seconds",
        "Wall-clock seconds spent inside backend.solve, per backend and problem.",
        labelnames=("backend", "problem"),
        buckets=_LATENCY_BUCKETS,
    )


def session_cache_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Session cache outcomes: result=hit|store_hit|miss."""
    return _registry(registry).counter(
        "atcd_session_cache_total",
        "AnalysisSession cache lookups by outcome "
        "(hit=in-memory, store_hit=shared store, miss=computed).",
        labelnames=("result",),
    )


# --- result store ---------------------------------------------------------

def store_lookups_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Store reads: result=hit|miss|rejected (rejected also counts as miss)."""
    return _registry(registry).counter(
        "atcd_store_lookups_total",
        "Result-store lookups by outcome; rejected = failed round-trip "
        "verification, served as a miss.",
        labelnames=("result",),
    )


def store_writes_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _registry(registry).counter(
        "atcd_store_writes_total",
        "Result-store writes (first-write-wins inserts and overwrites).",
    )


def store_written_bytes_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _registry(registry).counter(
        "atcd_store_written_bytes_total",
        "Serialized result payload bytes handed to the store for writing.",
    )


def store_evictions_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Evictions by reason=ttl|size."""
    return _registry(registry).counter(
        "atcd_store_evictions_total",
        "Result-store entries evicted by retention sweeps, by reason.",
        labelnames=("reason",),
    )


def store_entries(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _registry(registry).gauge(
        "atcd_store_entries",
        "Entries currently in the result store (refreshed at scrape).",
    )


def store_bytes(registry: Optional[MetricsRegistry] = None) -> Gauge:
    return _registry(registry).gauge(
        "atcd_store_bytes",
        "Payload bytes currently in the result store (refreshed at scrape).",
    )


# --- work queue -----------------------------------------------------------

def queue_ops_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Queue lifecycle events: op=submit|duplicate|claim|heartbeat|complete|
    retry|dead-letter|lease-expire|resubmit|cancel."""
    return _registry(registry).counter(
        "atcd_queue_ops_total",
        "Durable work-queue lifecycle events by operation.",
        labelnames=("op",),
    )


def queue_tasks(registry: Optional[MetricsRegistry] = None) -> Gauge:
    """Queue depth by state (refreshed from counts() at scrape time)."""
    return _registry(registry).gauge(
        "atcd_queue_tasks",
        "Tasks currently in each queue state (refreshed at scrape).",
        labelnames=("state",),
    )


def queue_pruned_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Retention sweep deletions: kind=task|descriptor."""
    return _registry(registry).counter(
        "atcd_queue_pruned_total",
        "Rows deleted by queue retention sweeps (atcd queue prune).",
        labelnames=("kind",),
    )


# --- workers --------------------------------------------------------------

def worker_task_seconds(registry: Optional[MetricsRegistry] = None) -> Histogram:
    return _registry(registry).histogram(
        "atcd_worker_task_seconds",
        "Wall-clock seconds a worker spent executing one task, by payload kind.",
        labelnames=("kind",),
        buckets=_LATENCY_BUCKETS,
    )


def worker_tasks_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Task outcomes as the worker saw them: outcome=completed|failed|lost-lease."""
    return _registry(registry).counter(
        "atcd_worker_tasks_total",
        "Tasks a worker finished, by outcome (lost-lease = result ready but "
        "the lease had already expired).",
        labelnames=("outcome",),
    )


def worker_heartbeats_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _registry(registry).counter(
        "atcd_worker_heartbeats_total",
        "Lease-extension heartbeats sent while executing tasks.",
    )


def worker_interrupted_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _registry(registry).counter(
        "atcd_worker_interrupted_total",
        "Tasks failed back to the queue because the worker was interrupted "
        "(SIGTERM/KeyboardInterrupt) mid-execution.",
    )


# --- HTTP servers ---------------------------------------------------------

def http_requests_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """Requests by server=broker|service, templated route, and status code."""
    return _registry(registry).counter(
        "atcd_http_requests_total",
        "HTTP requests served, by server, templated route and status code.",
        labelnames=("server", "route", "status"),
    )


def http_request_seconds(registry: Optional[MetricsRegistry] = None) -> Histogram:
    return _registry(registry).histogram(
        "atcd_http_request_seconds",
        "HTTP request handling latency, by server and templated route.",
        labelnames=("server", "route"),
        buckets=_LATENCY_BUCKETS,
    )


# --- multi-tenant service -------------------------------------------------

def service_jobs_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _registry(registry).counter(
        "atcd_service_jobs_total",
        "Jobs accepted per tenant (the unit of per-tenant usage accounting).",
        labelnames=("tenant",),
    )


def service_requests_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    return _registry(registry).counter(
        "atcd_service_requests_total",
        "Analysis requests admitted inside accepted jobs, per tenant.",
        labelnames=("tenant",),
    )


def service_rejections_total(registry: Optional[MetricsRegistry] = None) -> Counter:
    """429s per tenant: kind=quota|rate-limit."""
    return _registry(registry).counter(
        "atcd_service_rejections_total",
        "Job submissions rejected with 429, per tenant and rejection kind.",
        labelnames=("tenant", "kind"),
    )


def ensure_all(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Register every family (with zero samples) in ``registry``.

    Servers call this at startup so the exposition schema is complete
    from the first scrape; it is idempotent.
    """
    registry = _registry(registry)
    for factory in (
        solve_seconds,
        session_cache_total,
        store_lookups_total,
        store_writes_total,
        store_written_bytes_total,
        store_evictions_total,
        store_entries,
        store_bytes,
        queue_ops_total,
        queue_tasks,
        queue_pruned_total,
        worker_task_seconds,
        worker_tasks_total,
        worker_heartbeats_total,
        worker_interrupted_total,
        http_requests_total,
        http_request_seconds,
        service_jobs_total,
        service_requests_total,
        service_rejections_total,
    ):
        factory(registry)
    return registry
