"""Scrape-time assembly of a server's ``GET /metrics`` answer.

A process's own registry only knows what *this* process did — but solves
happen on workers, which may be separate processes on separate hosts.
Workers therefore publish their registry snapshot into queue metadata
(under :data:`WORKER_METRICS_META_PREFIX` + worker id) after every task,
and the serving process merges those snapshots into its own at scrape
time.  One ``GET /metrics`` then answers for the whole fleet, with no
push gateway and no extra wire protocol: the queue the fleet already
shares is the transport.

Gauges describe *current* state, not history, so they are refreshed here
from the queue/store summaries rather than updated on every operation —
and the local snapshot is merged *last* so its fresh gauge values win
over anything a snapshot happens to carry (gauges merge last-writer).

Caveat: merging assumes workers are separate processes.  A worker thread
sharing this process's registry would publish the very numbers the
server is about to snapshot, double-counting them — in-process tests
should scrape a fresh registry or skip publishing.

Everything here duck-types the queue/store (``counts()``, ``summary()``,
``get_meta()``) so :mod:`repro.obs` stays importable before — and
independent of — the rest of the package.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from . import families
from .metrics import MetricsRegistry, get_registry, merge_snapshots
from .promtext import render

__all__ = [
    "WORKER_METRICS_META_PREFIX",
    "worker_snapshots",
    "render_fleet_metrics",
]

#: Queue-meta key prefix under which each worker publishes its registry
#: snapshot (JSON).  Defined here, not in the worker, so scraping needs
#: nothing from :mod:`repro.distributed`.
WORKER_METRICS_META_PREFIX = "worker-metrics:"


def worker_snapshots(queue: Any) -> List[Dict[str, Any]]:
    """Every worker-published registry snapshot found in ``queue``'s meta.

    Worker ids come from the queue's own ``summary()["workers"]`` — any
    worker that ever completed a task is listed there, so no separate
    index is needed.  Unreadable or undecodable snapshots are skipped:
    a scrape must report what it can, not fail on one stale worker.
    """
    try:
        workers = queue.summary().get("workers") or []
    # staticcheck: allow-broad-except(queues are duck-typed here; a scrape reports what it can rather than failing)
    except Exception:
        return []
    snapshots: List[Dict[str, Any]] = []
    for worker_id in workers:
        try:
            raw = queue.get_meta(WORKER_METRICS_META_PREFIX + str(worker_id))
            if raw is None:
                continue
            snapshot = json.loads(raw)
        # staticcheck: allow-broad-except(one stale or undecodable worker snapshot must not fail the fleet scrape)
        except Exception:
            continue
        if isinstance(snapshot, dict):
            snapshots.append(snapshot)
    return snapshots


def _refresh_queue_gauge(
    queues: Iterable[Any], registry: MetricsRegistry
) -> None:
    totals: Dict[str, int] = {}
    for queue in queues:
        try:
            counts = queue.counts()
        # staticcheck: allow-broad-except(queues are duck-typed here; skip the one that cannot be counted)
        except Exception:
            continue
        for state, value in counts.items():
            totals[state] = totals.get(state, 0) + int(value)
    gauge = families.queue_tasks(registry)
    for state, value in totals.items():
        gauge.set(value, state=state)


def _refresh_store_gauges(store: Any, registry: MetricsRegistry) -> None:
    try:
        summary = store.summary()
    # staticcheck: allow-broad-except(stores are duck-typed here; a scrape without store gauges beats no scrape)
    except Exception:
        return
    families.store_entries(registry).set(int(summary.get("entries", 0)))
    families.store_bytes(registry).set(int(summary.get("size_bytes", 0)))


def render_fleet_metrics(
    queues: Iterable[Any] = (),
    store: Optional[Any] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """The Prometheus text body for one ``GET /metrics``.

    Refreshes the state gauges (task counts summed over ``queues``, store
    entries/bytes), merges every worker snapshot found in the queues'
    metadata under the process's own registry, and renders the result.
    """
    registry = registry if registry is not None else get_registry()
    families.ensure_all(registry)
    queues = list(queues)
    _refresh_queue_gauge(queues, registry)
    if store is not None:
        _refresh_store_gauges(store, registry)
    snapshots: List[Dict[str, Any]] = []
    for queue in queues:
        snapshots.extend(worker_snapshots(queue))
    snapshots.append(registry.snapshot())
    return render(merge_snapshots(*snapshots))
