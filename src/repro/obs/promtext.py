"""Prometheus text exposition (v0.0.4) for registry snapshots.

:func:`render` turns a :meth:`MetricsRegistry.snapshot` dict (or a
:func:`merge_snapshots` result) into the ``# HELP`` / ``# TYPE`` /
sample-line format any Prometheus-compatible scraper understands — the
payload behind ``GET /metrics`` on both ``atcd serve`` and ``atcd api``.

:func:`parse` is the inverse, deliberately small: enough to read back
what :func:`render` (or a real Prometheus client) produces so that
``atcd obs dump --json``, the CI smoke assertions and the golden tests
don't have to regex their way through the text format.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "CONTENT_TYPE",
    "render",
    "parse",
    "ParseError",
    "ParsedFamily",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(labels: Mapping[str, str], extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [(name, str(value)) for name, value in labels.items()]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _format_le(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    return _format_value(bound)


def render(snapshot: Mapping[str, Mapping[str, object]]) -> str:
    """Render a snapshot as Prometheus text format v0.0.4.

    Families come out in sorted-name order, samples in the snapshot's
    (already sorted) order; histogram buckets accumulate into the
    cumulative ``le`` convention with the mandatory ``+Inf`` bucket,
    ``_sum`` and ``_count`` series.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = str(family["type"])
        help_text = str(family.get("help", ""))
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        samples = family.get("samples", [])
        if kind == "histogram":
            buckets = [float(b) for b in family.get("buckets", [])]  # type: ignore[arg-type]
            for sample in samples:  # type: ignore[union-attr]
                labels = sample["labels"]  # type: ignore[index, call-overload]
                cumulative = 0
                for bound, count in zip(buckets, sample["counts"]):  # type: ignore[index, call-overload]
                    cumulative += count
                    label_block = _format_labels(
                        labels, (("le", _format_le(bound)),)
                    )
                    lines.append(
                        f"{name}_bucket{label_block} {_format_value(cumulative)}"
                    )
                total = int(sample["count"])  # type: ignore[index, call-overload]
                inf_block = _format_labels(labels, (("le", "+Inf"),))
                lines.append(f"{name}_bucket{inf_block} {_format_value(total)}")
                plain = _format_labels(labels)
                lines.append(f"{name}_sum{plain} {_format_value(sample['sum'])}")  # type: ignore[index, call-overload, arg-type]
                lines.append(f"{name}_count{plain} {_format_value(total)}")
        else:
            for sample in samples:  # type: ignore[union-attr]
                label_block = _format_labels(sample["labels"])  # type: ignore[index, call-overload]
                lines.append(
                    f"{name}{label_block} {_format_value(sample['value'])}"  # type: ignore[index, call-overload, arg-type]
                )
    return "\n".join(lines) + ("\n" if lines else "")


class ParseError(ValueError):
    """The text is not well-formed Prometheus exposition format."""


@dataclass
class ParsedFamily:
    """One metric family read back from exposition text."""

    name: str
    type: str = "untyped"
    help: str = ""
    # label-tuple -> value, keyed by the *full* sample name (so histogram
    # series land under name_bucket / name_sum / name_count).
    samples: List[Tuple[str, Dict[str, str], float]] = field(default_factory=list)

    def value(
        self, sample_name: Optional[str] = None, **labels: str
    ) -> Optional[float]:
        """The first sample matching ``sample_name`` (default: the bare
        family name) whose labels include every given pair."""
        wanted = sample_name or self.name
        for name, sample_labels, value in self.samples:
            if name != wanted:
                continue
            if all(sample_labels.get(k) == v for k, v in labels.items()):
                return value
        return None

    def total(self, sample_name: Optional[str] = None) -> float:
        """Sum over every sample of ``sample_name`` (default: bare name)."""
        wanted = sample_name or self.name
        return sum(v for name, _, v in self.samples if name == wanted)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)

_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def _parse_label_block(block: str, line_number: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i, n = 0, len(block)
    while i < n:
        match = re.match(r'\s*([a-zA-Z_][a-zA-Z0-9_]*)\s*=\s*"', block[i:])
        if not match:
            raise ParseError(f"line {line_number}: bad label block {block!r}")
        name = match.group(1)
        i += match.end()
        value_chars: List[str] = []
        while i < n:
            ch = block[i]
            if ch == "\\" and i + 1 < n:
                escape = block[i + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, "\\" + escape)
                )
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            value_chars.append(ch)
            i += 1
        else:
            raise ParseError(f"line {line_number}: unterminated label value")
        labels[name] = "".join(value_chars)
        rest = block[i:].lstrip()
        if rest.startswith(","):
            i = n - len(rest) + 1
        elif rest:
            raise ParseError(f"line {line_number}: junk after label {name!r}")
        else:
            break
    return labels


def _parse_value(text: str, line_number: int) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    try:
        return float(text)
    except ValueError as error:
        raise ParseError(
            f"line {line_number}: bad sample value {text!r}"
        ) from error


def _family_of(sample_name: str, families: Mapping[str, "ParsedFamily"]) -> str:
    """Which declared family a sample line belongs to.

    Histogram series carry suffixes; prefer an exact family match (a
    counter literally named ``x_total`` is its own family), then strip
    one known suffix.
    """
    if sample_name in families:
        return sample_name
    for suffix in _SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families:
                return base
    return sample_name


def parse(text: str) -> Dict[str, ParsedFamily]:
    """Parse exposition text into ``{family_name: ParsedFamily}``.

    Raises :class:`ParseError` on malformed lines; unknown sample names
    (no preceding ``# TYPE``) become untyped families of their own.
    """
    families: Dict[str, ParsedFamily] = {}
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name = parts[2]
                family = families.setdefault(name, ParsedFamily(name=name))
                family.type = parts[3].strip() if len(parts) > 3 else "untyped"
            elif len(parts) >= 3 and parts[1] == "HELP":
                name = parts[2]
                family = families.setdefault(name, ParsedFamily(name=name))
                help_text = parts[3] if len(parts) > 3 else ""
                family.help = help_text.replace("\\n", "\n").replace("\\\\", "\\")
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ParseError(f"line {line_number}: bad sample line {raw!r}")
        sample_name = match.group("name")
        label_block = match.group("labels")
        labels = (
            _parse_label_block(label_block, line_number) if label_block else {}
        )
        value = _parse_value(match.group("value"), line_number)
        family_name = _family_of(sample_name, families)
        family = families.setdefault(
            family_name, ParsedFamily(name=family_name)
        )
        family.samples.append((sample_name, labels, value))
    return families
