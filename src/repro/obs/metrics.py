"""Process-local metrics: labeled counters, gauges and histograms.

The registry is deliberately tiny and dependency-free — the repo's north
star is a service that runs under real traffic, and the autoscaling /
usage-accounting work both need an always-on measurement substrate that
can't pull in a client library.  The model follows Prometheus:

* a *metric family* has a name, a help string, a type and a fixed tuple
  of label names;
* each distinct label-value combination is one *sample* (a child);
* counters only go up, gauges go anywhere, histograms count
  observations into fixed buckets.

Everything is safe to call from any thread.  Instrumented modules fetch
their families through :meth:`MetricsRegistry.counter` & co., which are
get-or-create — re-registering an existing family with the same type is
a cheap lookup, so call sites don't need module-level caching that would
go stale when tests swap the registry.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-serialisable
dicts.  They are the unit of exchange across process boundaries: workers
publish their snapshot into queue metadata and servers merge those into
their own at scrape time (:func:`merge_snapshots`), so a single
``GET /metrics`` answers for the whole fleet.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "reset_registry",
    "merge_snapshots",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Solve / request latencies span sub-millisecond cache hits to multi-second
# MILP solves; a coarse exponential ladder keeps the sample payload small.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _validate_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(labelnames)
    for label in names:
        if not isinstance(label, str) or not _LABEL_RE.match(label):
            raise ValueError(f"invalid label name: {label!r}")
        if label == "le":
            raise ValueError('label name "le" is reserved for histograms')
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate label names: {names!r}")
    return names


class _Metric:
    """Shared machinery: one lock, one sample table keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str]) -> None:
        self.name = _validate_name(name)
        self.help = str(help)
        self.labelnames = _validate_labelnames(labelnames)
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_dict(self, key: Tuple[str, ...]) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))


class Counter(_Metric):
    """Monotonically increasing count (events, bytes, errors)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount  # type: ignore[operator]

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))  # type: ignore[arg-type]

    def _snapshot_samples(self) -> List[Dict[str, object]]:
        with self._lock:
            items = list(self._samples.items())
        return [
            {"labels": self._label_dict(key), "value": value}
            for key, value in sorted(items)
        ]


class Gauge(_Metric):
    """Point-in-time value (queue depth, live workers, bytes on disk)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount  # type: ignore[operator]

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(self._key(labels), 0.0))  # type: ignore[arg-type]

    def _snapshot_samples(self) -> List[Dict[str, object]]:
        with self._lock:
            items = list(self._samples.items())
        return [
            {"labels": self._label_dict(key), "value": value}
            for key, value in sorted(items)
        ]


class Histogram(_Metric):
    """Observation distribution over fixed, registration-time buckets.

    Internally each sample keeps *per-bucket* counts (not cumulative);
    exposition (`promtext.render`) accumulates them into the Prometheus
    ``le`` convention.  Per-bucket counts merge across processes by plain
    element-wise addition, which is why snapshots keep them raw.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"buckets must be sorted and unique: {buckets!r}")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            sample = self._samples.get(key)
            if sample is None:
                sample = {
                    "counts": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = sample
            sample["counts"][index] += 1  # type: ignore[index]
            sample["sum"] += value  # type: ignore[operator, index]
            sample["count"] += 1  # type: ignore[operator, index]

    def count(self, **labels: object) -> int:
        with self._lock:
            sample = self._samples.get(self._key(labels))
            return int(sample["count"]) if sample else 0  # type: ignore[index, call-overload]

    def _snapshot_samples(self) -> List[Dict[str, object]]:
        with self._lock:
            items = [
                (key, {
                    "counts": list(sample["counts"]),  # type: ignore[index, call-overload]
                    "sum": sample["sum"],  # type: ignore[index, call-overload]
                    "count": sample["count"],  # type: ignore[index, call-overload]
                })
                for key, sample in self._samples.items()
            ]
        return [
            {"labels": self._label_dict(key), **sample}
            for key, sample in sorted(items)
        ]


class MetricsRegistry:
    """A named collection of metric families.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name with the matching type returns the existing family
    (help/labels of the first registration win); a type mismatch raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: object) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, not {cls.kind}"  # type: ignore[attr-defined]
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames=labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames=labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labelnames=labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serialisable view of every family and sample."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        out: Dict[str, Dict[str, object]] = {}
        for name, metric in metrics:
            family: Dict[str, object] = {
                "type": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
                "samples": metric._snapshot_samples(),  # type: ignore[attr-defined]
            }
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
            out[name] = family
        return out


def merge_snapshots(
    *snapshots: Mapping[str, Mapping[str, object]],
) -> Dict[str, Dict[str, object]]:
    """Combine per-process snapshots into one fleet-wide view.

    Counters and histogram bucket counts add; gauges keep the last
    writer's value (snapshots are merged in argument order, so pass the
    local snapshot last if its gauges should win).  Families present in
    only some snapshots pass through; a family whose type or histogram
    buckets disagree across snapshots keeps the first version and skips
    the conflicting samples rather than producing corrupt sums.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, family in snapshot.items():
            if name not in merged:
                merged[name] = {
                    "type": family["type"],
                    "help": family["help"],
                    "labelnames": list(family["labelnames"]),  # type: ignore[arg-type]
                    "samples": [
                        dict(sample, labels=dict(sample["labels"]))  # type: ignore[index, call-overload]
                        for sample in family["samples"]  # type: ignore[union-attr]
                    ],
                }
                if "buckets" in family:
                    merged[name]["buckets"] = list(family["buckets"])  # type: ignore[arg-type]
                continue
            target = merged[name]
            if target["type"] != family["type"]:
                continue
            if target["type"] == "histogram" and list(
                target.get("buckets", [])
            ) != list(family.get("buckets", [])):  # type: ignore[arg-type, call-overload]
                continue
            index = {
                tuple(sorted(sample["labels"].items())): sample  # type: ignore[index, call-overload, union-attr]
                for sample in target["samples"]  # type: ignore[union-attr]
            }
            for sample in family["samples"]:  # type: ignore[union-attr]
                key = tuple(sorted(sample["labels"].items()))  # type: ignore[index, call-overload]
                existing = index.get(key)
                if existing is None:
                    fresh = dict(sample, labels=dict(sample["labels"]))  # type: ignore[index, call-overload]
                    target["samples"].append(fresh)  # type: ignore[union-attr]
                    index[key] = fresh
                elif target["type"] == "histogram":
                    existing["counts"] = [
                        a + b
                        for a, b in zip(existing["counts"], sample["counts"])  # type: ignore[index, call-overload]
                    ]
                    existing["sum"] += sample["sum"]  # type: ignore[index, call-overload]
                    existing["count"] += sample["count"]  # type: ignore[index, call-overload]
                elif target["type"] == "counter":
                    existing["value"] += sample["value"]  # type: ignore[index, call-overload]
                else:  # gauge: last writer wins
                    existing["value"] = sample["value"]  # type: ignore[index, call-overload]
    for family in merged.values():
        family["samples"] = sorted(  # type: ignore[assignment]
            family["samples"],  # type: ignore[arg-type]
            key=lambda sample: sorted(sample["labels"].items()),  # type: ignore[index, call-overload, union-attr]
        )
    return merged


_default_lock = threading.Lock()
_default_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-global default registry (created on first use)."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = MetricsRegistry()
        return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous if previous is not None else MetricsRegistry()


def reset_registry() -> MetricsRegistry:
    """Replace the process-global registry with a fresh one and return it."""
    global _default_registry
    with _default_lock:
        _default_registry = MetricsRegistry()
        return _default_registry
