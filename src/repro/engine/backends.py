"""Built-in backends: the paper's three exact solvers plus three extensions.

Exact backends (auto-selectable, Table I):

* ``bottom-up`` — Pareto propagation for treelike ATs (Theorems 4 and 9);
* ``bilp`` — bi-objective integer programming for deterministic DAGs
  (Theorem 6; no probabilistic formulation exists, see Section IX);
* ``enumerative`` — the exhaustive baseline; covers every cell, including
  the probabilistic-DAG open problem, at exponential cost.

Approximate / extension backends (explicit opt-in by name):

* ``genetic`` — NSGA-II front approximation (:mod:`repro.extensions.genetic`);
* ``prob-dag`` — exact probabilistic-DAG enumeration with a BAS-count guard
  (:mod:`repro.extensions.prob_dag`);
* ``monte-carlo`` — sampled expected damage for probabilistic DAGs
  (:mod:`repro.probability.montecarlo` via the prob-dag extension).

Each backend maps problems to handlers through a plain dict, so adding a
problem or a backend never touches a dispatch ladder.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import bilp, bottom_up, bottom_up_prob, enumerative
from ..core.problems import Problem
from ..extensions import genetic as genetic_ext
from ..extensions import prob_dag as prob_dag_ext
from ..pareto.front import ParetoFront, ParetoPoint
from .backend import (
    BackendOutput,
    BaseBackend,
    Model,
    Setting,
    Shape,
    as_deterministic,
    cells,
    require_probabilistic,
)
from .requests import AnalysisRequest

__all__ = [
    "BottomUpBackend",
    "BottomUpNumpyBackend",
    "BilpBackend",
    "EnumerativeBackend",
    "GeneticBackend",
    "ProbDagBackend",
    "MonteCarloBackend",
    "standard_backends",
]

DETERMINISTIC_PROBLEMS = (Problem.CDPF, Problem.DGC, Problem.CGD)
PROBABILISTIC_PROBLEMS = (Problem.CEDPF, Problem.EDGC, Problem.CGED)
BOTH_SHAPES = (Shape.TREE, Shape.DAG)


class BottomUpBackend(BaseBackend):
    """Bottom-up Pareto propagation for treelike ATs (Theorems 4 and 9)."""

    name = "bottom-up"
    exact = True
    priority = 100
    capabilities = cells(
        DETERMINISTIC_PROBLEMS, (Shape.TREE,), Setting.DETERMINISTIC
    ) | cells(PROBABILISTIC_PROBLEMS, (Shape.TREE,), Setting.PROBABILISTIC)

    def __init__(self) -> None:
        self.handlers = {
            Problem.CDPF: self._cdpf,
            Problem.DGC: self._dgc,
            Problem.CGD: self._cgd,
            Problem.CEDPF: self._cedpf,
            Problem.EDGC: self._edgc,
            Problem.CGED: self._cged,
        }

    def unsupported_reason(
        self, problem: Problem, shape: Shape, setting: Setting
    ) -> Optional[str]:
        if shape is Shape.DAG:
            return (
                "the bottom-up method requires a treelike AT (shared subtrees "
                "break the recursion, Section VI); use bilp or enumerative"
            )
        return None

    def cell_label(self, shape: Shape, setting: Setting) -> str:
        theorem = "Theorem 9" if setting is Setting.PROBABILISTIC else "Theorem 4"
        return f"bottom-up ({theorem})"

    def _cdpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        return BackendOutput(front=bottom_up.pareto_front_treelike(as_deterministic(model)))

    def _dgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = bottom_up.max_damage_given_cost_treelike(
            as_deterministic(model), request.budget
        )
        return BackendOutput(value=value, witness=witness)

    def _cgd(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = bottom_up.min_cost_given_damage_treelike(
            as_deterministic(model), request.threshold
        )
        return BackendOutput(value=value, witness=witness)

    def _cedpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        cdpat = require_probabilistic(model, request.problem)
        return BackendOutput(front=bottom_up_prob.pareto_front_treelike_probabilistic(cdpat))

    def _edgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        cdpat = require_probabilistic(model, request.problem)
        value, witness = bottom_up_prob.max_expected_damage_given_cost_treelike(
            cdpat, request.budget
        )
        return BackendOutput(value=value, witness=witness)

    def _cged(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        cdpat = require_probabilistic(model, request.problem)
        value, witness = bottom_up_prob.min_cost_given_expected_damage_treelike(
            cdpat, request.threshold
        )
        return BackendOutput(value=value, witness=witness)


class BottomUpNumpyBackend(BaseBackend):
    """Numpy-accelerated bottom-up fold (deterministic treelike cells).

    Produces bit-identical results to ``bottom-up`` — the gate-fold inner
    loops (outer sums, budget filter, staircase pruning) are vectorised
    while witness bitsets stay exact Python integers.  Only registered by
    :func:`standard_backends` when numpy is importable, and kept at a lower
    priority than the pure-Python reference so auto-selection is unchanged;
    the differential suite pits the two against each other.
    """

    name = "bottom-up-numpy"
    exact = True
    priority = 95
    capabilities = cells(
        DETERMINISTIC_PROBLEMS, (Shape.TREE,), Setting.DETERMINISTIC
    )

    def __init__(self) -> None:
        self.handlers = {
            Problem.CDPF: self._cdpf,
            Problem.DGC: self._dgc,
            Problem.CGD: self._cgd,
        }

    def unsupported_reason(
        self, problem: Problem, shape: Shape, setting: Setting
    ) -> Optional[str]:
        if shape is Shape.DAG:
            return (
                "the bottom-up method requires a treelike AT (shared subtrees "
                "break the recursion, Section VI); use bilp or enumerative"
            )
        if setting is Setting.PROBABILISTIC:
            return (
                "the numpy fast path only covers the deterministic problems; "
                "use bottom-up for the probabilistic treelike cells"
            )
        return None

    def cell_label(self, shape: Shape, setting: Setting) -> str:
        return "bottom-up (Theorem 4, numpy fold)"

    def _cdpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        return BackendOutput(
            front=bottom_up.pareto_front_treelike(
                as_deterministic(model), accelerator="numpy"
            )
        )

    def _dgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = bottom_up.max_damage_given_cost_treelike(
            as_deterministic(model), request.budget, accelerator="numpy"
        )
        return BackendOutput(value=value, witness=witness)

    def _cgd(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = bottom_up.min_cost_given_damage_treelike(
            as_deterministic(model), request.threshold, accelerator="numpy"
        )
        return BackendOutput(value=value, witness=witness)


class BilpBackend(BaseBackend):
    """Bi-objective integer linear programming (Theorem 6), DAGs included."""

    name = "bilp"
    exact = True
    priority = 90
    capabilities = cells(DETERMINISTIC_PROBLEMS, BOTH_SHAPES, Setting.DETERMINISTIC)

    def __init__(self) -> None:
        self.handlers = {
            Problem.CDPF: self._cdpf,
            Problem.DGC: self._dgc,
            Problem.CGD: self._cgd,
        }

    def unsupported_reason(
        self, problem: Problem, shape: Shape, setting: Setting
    ) -> Optional[str]:
        if setting is Setting.PROBABILISTIC:
            return (
                f"{problem.name} has no BILP formulation (the constraints become "
                "nonlinear); use bottom-up for treelike ATs or enumerative"
            )
        return None

    def cell_label(self, shape: Shape, setting: Setting) -> str:
        return "BILP (Theorem 6)"

    def _cdpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        return BackendOutput(front=bilp.pareto_front_bilp(as_deterministic(model)))

    def _dgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = bilp.max_damage_given_cost_bilp(
            as_deterministic(model), request.budget
        )
        return BackendOutput(value=value, witness=witness)

    def _cgd(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = bilp.min_cost_given_damage_bilp(
            as_deterministic(model), request.threshold
        )
        return BackendOutput(value=value, witness=witness)


class EnumerativeBackend(BaseBackend):
    """Exhaustive enumeration over all attacks: every cell, exponential cost.

    This is the auto-selected fallback for the probabilistic-DAG cell the
    paper leaves open (Section IX).
    """

    name = "enumerative"
    exact = True
    priority = 10
    capabilities = cells(
        DETERMINISTIC_PROBLEMS, BOTH_SHAPES, Setting.DETERMINISTIC
    ) | cells(PROBABILISTIC_PROBLEMS, BOTH_SHAPES, Setting.PROBABILISTIC)

    def __init__(self) -> None:
        self.handlers = {
            Problem.CDPF: self._cdpf,
            Problem.DGC: self._dgc,
            Problem.CGD: self._cgd,
            Problem.CEDPF: self._cedpf,
            Problem.EDGC: self._edgc,
            Problem.CGED: self._cged,
        }

    def cell_label(self, shape: Shape, setting: Setting) -> str:
        if setting is Setting.PROBABILISTIC and shape is Shape.DAG:
            return "open problem (enumerative / Monte-Carlo extension)"
        return "enumerative baseline"

    def _cdpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        return BackendOutput(front=enumerative.enumerate_pareto_front(as_deterministic(model)))

    def _dgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = enumerative.enumerate_max_damage_given_cost(
            as_deterministic(model), request.budget
        )
        return BackendOutput(value=value, witness=witness)

    def _cgd(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        value, witness = enumerative.enumerate_min_cost_given_damage(
            as_deterministic(model), request.threshold
        )
        return BackendOutput(value=value, witness=witness)

    def _cedpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        cdpat = require_probabilistic(model, request.problem)
        return BackendOutput(front=enumerative.enumerate_pareto_front_probabilistic(cdpat))

    def _edgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        cdpat = require_probabilistic(model, request.problem)
        value, witness = enumerative.enumerate_max_expected_damage_given_cost(
            cdpat, request.budget
        )
        return BackendOutput(value=value, witness=witness)

    def _cged(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        cdpat = require_probabilistic(model, request.problem)
        value, witness = enumerative.enumerate_min_cost_given_expected_damage(
            cdpat, request.threshold
        )
        return BackendOutput(value=value, witness=witness)


class GeneticBackend(BaseBackend):
    """NSGA-II Pareto-front approximation (the paper's future-work item).

    Options: ``population_size``, ``generations``, ``crossover_probability``,
    ``mutation_probability``, ``seed`` (see
    :class:`repro.extensions.genetic.GeneticConfig`).
    Front problems are approximated directly; the single-objective problems
    are answered by querying the approximate front.
    """

    name = "genetic"
    exact = False
    priority = 0
    capabilities = cells(
        DETERMINISTIC_PROBLEMS, BOTH_SHAPES, Setting.DETERMINISTIC
    ) | cells(PROBABILISTIC_PROBLEMS, BOTH_SHAPES, Setting.PROBABILISTIC)

    options_spec = {
        "population_size": (int,),
        "generations": (int,),
        "crossover_probability": (int, float),
        "mutation_probability": (int, float),
        "seed": (int,),
    }

    def __init__(self) -> None:
        self.handlers = {
            Problem.CDPF: self._front,
            Problem.CEDPF: self._front,
            Problem.DGC: self._dgc,
            Problem.EDGC: self._dgc,
            Problem.CGD: self._cgd,
            Problem.CGED: self._cgd,
        }

    def _config(self, request: AnalysisRequest) -> genetic_ext.GeneticConfig:
        overrides = {
            key: request.option(key)
            for key in self.options_spec
            if request.option(key) is not None
        }
        return genetic_ext.GeneticConfig(**overrides)

    def _approximate(self, model: Model, request: AnalysisRequest) -> ParetoFront:
        probabilistic = request.problem.is_probabilistic
        if probabilistic:
            require_probabilistic(model, request.problem)
        return genetic_ext.approximate_pareto_front(
            model, config=self._config(request), probabilistic=probabilistic
        )

    def _front(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        return BackendOutput(
            front=self._approximate(model, request), extras={"approximate": True}
        )

    def _dgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        front = self._approximate(model, request)
        point = front.best_attack_given_cost(request.budget)
        if point is None:
            return BackendOutput(value=0.0, witness=None, extras={"approximate": True})
        return BackendOutput(
            value=point.damage, witness=point.attack, extras={"approximate": True}
        )

    def _cgd(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        front = self._approximate(model, request)
        point = front.cheapest_attack_given_damage(request.threshold)
        if point is None:
            return BackendOutput(value=None, witness=None, extras={"approximate": True})
        return BackendOutput(
            value=point.cost, witness=point.attack, extras={"approximate": True}
        )


class ProbDagBackend(BaseBackend):
    """Exact probabilistic-DAG enumeration with an explicit BAS-count guard.

    Unlike the plain ``enumerative`` backend this refuses models whose
    doubly-exponential enumeration is hopeless (option ``max_bas``,
    default 18), making it the safer explicit choice for the open-problem
    cell.  Treelike models are accepted too (a tree is a DAG).
    """

    name = "prob-dag"
    exact = True
    priority = 5
    capabilities = cells(PROBABILISTIC_PROBLEMS, BOTH_SHAPES, Setting.PROBABILISTIC)
    options_spec = {"max_bas": (int,)}

    def __init__(self) -> None:
        self.handlers = {
            Problem.CEDPF: self._cedpf,
            Problem.EDGC: self._edgc,
            Problem.CGED: self._cged,
        }

    def unsupported_reason(
        self, problem: Problem, shape: Shape, setting: Setting
    ) -> Optional[str]:
        if setting is Setting.DETERMINISTIC:
            return (
                "the prob-dag backend only answers the probabilistic problems; "
                "use bottom-up, bilp or enumerative for deterministic analyses"
            )
        return None

    def _exact_front(self, model: Model, request: AnalysisRequest) -> ParetoFront:
        cdpat = require_probabilistic(model, request.problem)
        return prob_dag_ext.pareto_front_probabilistic_exact(
            cdpat, max_bas=request.option("max_bas", 18)
        )

    def _cedpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        return BackendOutput(front=self._exact_front(model, request))

    def _edgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        front = self._exact_front(model, request)
        point = front.best_attack_given_cost(request.budget)
        if point is None:
            return BackendOutput(value=0.0, witness=None)
        return BackendOutput(value=point.damage, witness=point.attack)

    def _cged(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        front = self._exact_front(model, request)
        point = front.cheapest_attack_given_damage(request.threshold)
        if point is None:
            return BackendOutput(value=None, witness=None)
        return BackendOutput(value=point.cost, witness=point.attack)


class MonteCarloBackend(BaseBackend):
    """Sampled expected damage for probabilistic models of any shape.

    Options: ``samples_per_attack`` (default 2000), ``seed`` (default 0),
    ``max_bas`` (default 22).  Results carry per-point standard errors in
    ``extras["standard_errors"]`` so callers can judge the resolution.
    """

    name = "monte-carlo"
    exact = False
    priority = 0
    capabilities = cells(PROBABILISTIC_PROBLEMS, BOTH_SHAPES, Setting.PROBABILISTIC)
    options_spec = {
        "samples_per_attack": (int,),
        "seed": (int,),
        "max_bas": (int,),
    }

    def __init__(self) -> None:
        self.handlers = {
            Problem.CEDPF: self._cedpf,
            Problem.EDGC: self._edgc,
            Problem.CGED: self._cged,
        }

    def _estimate(self, model: Model, request: AnalysisRequest):
        cdpat = require_probabilistic(model, request.problem)
        return prob_dag_ext.pareto_front_probabilistic_montecarlo(
            cdpat,
            samples_per_attack=request.option("samples_per_attack", 2000),
            seed=request.option("seed", 0),
            max_bas=request.option("max_bas", 22),
        )

    def _as_front(self, model: Model, approximate_points) -> ParetoFront:
        return ParetoFront(
            ParetoPoint(
                cost=point.cost,
                damage=point.expected_damage,
                attack=point.attack,
                reaches_root=model.tree.is_successful(point.attack),
            )
            for point in approximate_points
        )

    def _errors(self, approximate_points) -> dict:
        return {
            "approximate": True,
            "standard_errors": [
                {
                    "cost": point.cost,
                    "expected_damage": point.expected_damage,
                    "standard_error": point.estimate.standard_error,
                    "samples": point.estimate.samples,
                }
                for point in approximate_points
            ],
        }

    def _cedpf(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        points = self._estimate(model, request)
        return BackendOutput(front=self._as_front(model, points), extras=self._errors(points))

    def _edgc(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        points = self._estimate(model, request)
        front = self._as_front(model, points)
        point = front.best_attack_given_cost(request.budget)
        if point is None:
            return BackendOutput(value=0.0, witness=None, extras=self._errors(points))
        return BackendOutput(
            value=point.damage, witness=point.attack, extras=self._errors(points)
        )

    def _cged(self, model: Model, request: AnalysisRequest) -> BackendOutput:
        points = self._estimate(model, request)
        front = self._as_front(model, points)
        point = front.cheapest_attack_given_damage(request.threshold)
        if point is None:
            return BackendOutput(value=None, witness=None, extras=self._errors(points))
        return BackendOutput(
            value=point.cost, witness=point.attack, extras=self._errors(points)
        )


def standard_backends() -> List[BaseBackend]:
    """Fresh instances of every built-in backend.

    The numpy fast path is an optional capability: it joins the roster only
    when numpy is importable, so environments without it see exactly the
    classic backend set.
    """
    backends: List[BaseBackend] = [
        BottomUpBackend(),
        BilpBackend(),
        EnumerativeBackend(),
        GeneticBackend(),
        ProbDagBackend(),
        MonteCarloBackend(),
    ]
    if bottom_up.numpy_available():
        backends.insert(1, BottomUpNumpyBackend())
    return backends
