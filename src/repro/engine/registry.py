"""Capability-aware backend registry: data-driven Table I resolution.

The registry replaces the old ``if/elif`` ladder of
``repro.core.problems``: every backend declares which
``(problem, shape, setting)`` cells it covers, and
:meth:`BackendRegistry.resolve` picks the highest-priority *exact* backend
covering the requested cell.  Approximate backends (genetic, Monte-Carlo)
are registered alongside the exact ones but are only reachable by explicit
name, so automatic resolution always reproduces the paper's Table I:

==============  =====  ==========================================
setting         shape  resolved backend
==============  =====  ==========================================
deterministic   tree   ``bottom-up``  (Theorem 4)
deterministic   dag    ``bilp``       (Theorem 6)
probabilistic   tree   ``bottom-up``  (Theorem 9)
probabilistic   dag    ``enumerative`` (the open problem's fallback)
==============  =====  ==========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.problems import Problem
from .backend import (
    Model,
    Setting,
    Shape,
    SolverBackend,
    model_shape,
    problem_setting,
    require_probabilistic,
)

__all__ = [
    "BackendRegistryError",
    "UnknownBackendError",
    "CapabilityError",
    "BackendRegistry",
    "default_registry",
]


class BackendRegistryError(ValueError):
    """Base class for registry failures."""


class UnknownBackendError(BackendRegistryError):
    """A request named a backend that is not registered."""


class CapabilityError(BackendRegistryError):
    """No (or no suitable) backend covers the requested cell."""


class BackendRegistry:
    """A mutable collection of solver backends with capability resolution."""

    def __init__(self) -> None:
        self._backends: Dict[str, SolverBackend] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, backend: SolverBackend, replace: bool = False) -> SolverBackend:
        """Add a backend under its :attr:`~SolverBackend.name`.

        Registering a second backend under an existing name is an error
        unless ``replace=True`` — silent shadowing hides configuration bugs.
        Returns the backend so registration can be used inline.
        """
        if backend.name in self._backends and not replace:
            raise BackendRegistryError(
                f"a backend named {backend.name!r} is already registered; "
                "pass replace=True to override it"
            )
        self._backends[backend.name] = backend
        return backend

    def unregister(self, name: str) -> None:
        """Remove a backend by name."""
        try:
            del self._backends[name]
        except KeyError:
            raise UnknownBackendError(self._unknown_message(name)) from None

    def names(self) -> List[str]:
        """The registered backend names, sorted."""
        return sorted(self._backends)

    def get(self, name: str) -> SolverBackend:
        """Look up a backend by name."""
        try:
            return self._backends[name]
        except KeyError:
            raise UnknownBackendError(self._unknown_message(name)) from None

    def __contains__(self, name: object) -> bool:
        return name in self._backends

    def __len__(self) -> int:
        return len(self._backends)

    def _unknown_message(self, name: str) -> str:
        return (
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(self.names()) or '(none)'}"
        )

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def candidates(
        self, problem: Problem, shape: Shape, setting: Setting, exact_only: bool = True
    ) -> List[SolverBackend]:
        """Backends covering a cell, best (highest priority) first."""
        found = [
            backend
            for backend in self._backends.values()
            if backend.covers(problem, shape, setting)
            and (backend.exact or not exact_only)
        ]
        return sorted(found, key=lambda b: (-b.priority, b.name))

    def resolve(
        self, problem: Problem, model: Model, backend: Optional[str] = None
    ) -> SolverBackend:
        """Pick the backend answering ``problem`` on ``model``.

        With ``backend=None`` this reproduces Table I: the highest-priority
        exact backend covering ``(problem, shape(model), setting(problem))``.
        With a name, that backend is returned after checking it covers the
        cell (backends can veto with a domain-specific message, e.g. "CEDPF
        has no BILP formulation").
        """
        shape = model_shape(model)
        setting = problem_setting(problem)
        if setting is Setting.PROBABILISTIC:
            # Fail setting mismatches here, not deep inside a solver: callers
            # (e.g. the batch CLI's pre-flight) rely on resolution to reject
            # a probabilistic problem on a probability-less model.
            require_probabilistic(model, problem)
        if backend is not None:
            chosen = self.get(backend)
            if not chosen.covers(problem, shape, setting):
                reason = chosen.unsupported_reason(problem, shape, setting)
                if reason is None:
                    reason = (
                        f"backend {chosen.name!r} does not cover problem "
                        f"{problem.value!r} on {setting.value} {shape.value}-shaped "
                        "models"
                    )
                raise CapabilityError(reason)
            return chosen
        found = self.candidates(problem, shape, setting)
        if not found:
            approximate = self.candidates(problem, shape, setting, exact_only=False)
            hint = (
                "; approximate backends covering it: "
                + ", ".join(b.name for b in approximate)
                if approximate
                else ""
            )
            raise CapabilityError(
                f"no exact backend covers problem {problem.value!r} on "
                f"{setting.value} {shape.value}-shaped models{hint}"
            )
        return found[0]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def capability_report(self) -> Dict[Tuple[str, str], str]:
        """Table I as resolved by this registry.

        Keys are ``(setting, shape)`` string pairs; values are the resolved
        backend's label for the cell.  With the default backends this
        reproduces the paper's table verbatim.
        """
        representative = {
            Setting.DETERMINISTIC: Problem.CDPF,
            Setting.PROBABILISTIC: Problem.CEDPF,
        }
        table: Dict[Tuple[str, str], str] = {}
        for setting, problem in representative.items():
            for shape in Shape:
                found = self.candidates(problem, shape, setting)
                if not found:
                    table[(setting.value, shape.value)] = "(uncovered)"
                    continue
                best = found[0]
                label = getattr(best, "cell_label", None)
                table[(setting.value, shape.value)] = (
                    label(shape, setting) if callable(label) else best.name
                )
        return table

    def describe(self) -> str:
        """Multi-line overview of backends and their coverage (for the CLI)."""
        lines = []
        for name in self.names():
            backend = self._backends[name]
            kind = "exact" if backend.exact else "approximate"
            problems = sorted({c.problem.value for c in backend.capabilities})
            shapes = sorted({c.shape.value for c in backend.capabilities})
            lines.append(
                f"{name:<12} {kind:<12} priority={backend.priority:<4} "
                f"problems={','.join(problems)} shapes={','.join(shapes)}"
            )
        return "\n".join(lines)


def default_registry() -> BackendRegistry:
    """A fresh registry with every built-in backend registered.

    The import is deferred so that backend modules (which pull in the
    extension solvers) only load when the engine is actually used.
    """
    from .backends import standard_backends

    registry = BackendRegistry()
    for backend in standard_backends():
        registry.register(backend)
    return registry


_shared_registry: Optional[BackendRegistry] = None


def shared_registry() -> BackendRegistry:
    """The process-wide default registry (created on first use)."""
    global _shared_registry
    if _shared_registry is None:
        _shared_registry = default_registry()
    return _shared_registry
