"""Analysis sessions: per-model caching and batch execution.

An :class:`AnalysisSession` owns one model and executes
:class:`~repro.engine.requests.AnalysisRequest` objects against it through
a :class:`~repro.engine.registry.BackendRegistry`.  Results are cached by
``(model fingerprint, request)`` — the fingerprint is a SHA-256 digest of
the model's canonical JSON serialization, so two sessions over structurally
identical models share nothing but *would* agree on keys, which is what a
future shared (e.g. out-of-process) cache needs.

Batches run sequentially by default; the ``executor`` knob fans them out
over a pool from :mod:`concurrent.futures`:

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  The
  solvers are pure Python, so threads mostly help when backends release
  the GIL or block on I/O.
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor` for
  true CPU parallelism on the solver hot path.  The model crosses the
  process boundary once per worker (via its canonical JSON form, installed
  by a pool initializer); each request and result crosses as its JSON
  dict.  Workers resolve backends against their own process-wide registry,
  so the process executor requires the default built-in backends.

Cache hits are always served in the parent process; only misses are
dispatched, and duplicate misses within one batch are computed once.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..attacktree import serialization
from ..core.problems import Problem
from ..obs import families as obs_families
from ..obs.trace import span as trace_span
from .backend import Model, model_shape, problem_setting
from .registry import BackendRegistry, shared_registry
from .requests import AnalysisRequest, AnalysisResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import ResultStore

__all__ = [
    "AnalysisSession",
    "SessionStats",
    "EXECUTORS",
    "model_fingerprint",
    "run_request",
    "run_serialized_request",
]

#: Batch executor names accepted by :meth:`AnalysisSession.run_batch`.
EXECUTORS = ("sequential", "thread", "process")


def model_fingerprint(model: Model) -> str:
    """A stable content hash of a decorated attack tree.

    Computed over the canonical JSON serialization (sorted keys), so it is
    insensitive to dict ordering and identical across processes — suitable
    as a cache-sharding key.
    """
    import json

    payload = json.dumps(serialization.to_dict(model), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_request(
    model: Model,
    request: AnalysisRequest,
    registry: Optional[BackendRegistry] = None,
) -> AnalysisResult:
    """Execute one request against a model, without any session caching.

    This is the engine's stateless core: validate, resolve the backend via
    the registry, run it, and wrap the output with metadata.  Both
    :class:`AnalysisSession` and the back-compat ``repro.core.solve`` shim
    funnel through here.
    """
    request.validate()
    registry = registry if registry is not None else shared_registry()
    backend = registry.resolve(request.problem, model, backend=request.backend)
    backend.validate_options(request)
    started = time.perf_counter()
    with trace_span(
        "solve",
        attrs={"backend": backend.name, "problem": request.problem.value},
    ):
        output = backend.solve(model, request)
    elapsed = time.perf_counter() - started
    obs_families.solve_seconds().observe(
        elapsed, backend=backend.name, problem=request.problem.value
    )
    return AnalysisResult(
        request=request,
        backend=backend.name,
        shape=model_shape(model).value,
        setting=problem_setting(request.problem).value,
        front=output.front,
        value=output.value,
        witness=output.witness,
        wall_time_seconds=elapsed,
        cache_hit=False,
        node_count=len(model.tree),
        bas_count=len(model.tree.basic_attack_steps),
        extras=output.extras,
    )


def run_serialized_request(
    model_payload: Dict[str, Any],
    request_payload: Dict[str, Any],
    store: Optional["ResultStore"] = None,
) -> Dict[str, Any]:
    """Execute one JSON-encoded request against a JSON-encoded model.

    The stateless, wire-format twin of :func:`run_request`: everything in
    and out is a plain JSON-compatible dict, so callers can ship work across
    process or network boundaries without pickling any domain object.
    Backends resolve against the calling process's shared registry.

    With ``store`` set, execution is *idempotent* across retries: the
    request is read through (and written back to) the shared result store,
    so a task re-executed after a worker crash is answered with the result
    the first execution already persisted instead of being recomputed —
    the hook :mod:`repro.distributed` workers rely on.
    """
    model = serialization.from_dict(model_payload)
    request = AnalysisRequest.from_dict(request_payload)
    if store is not None:
        return AnalysisSession(model, store=store).run(request).to_dict()
    return run_request(model, request).to_dict()


# Per-worker-process state for the session's process executor: the model is
# deserialized once per worker (pool initializer) instead of once per task.
_WORKER_MODEL: Optional[Model] = None


def _process_initializer(model_payload: Dict[str, Any]) -> None:
    global _WORKER_MODEL
    _WORKER_MODEL = serialization.from_dict(model_payload)


def _process_worker(request_payload: Dict[str, Any]) -> Dict[str, Any]:
    if _WORKER_MODEL is None:  # pragma: no cover - defensive
        raise RuntimeError("process worker used without its model initializer")
    request = AnalysisRequest.from_dict(request_payload)
    return run_request(_WORKER_MODEL, request).to_dict()


@dataclass
class SessionStats:
    """Cache counters of one session.

    ``store_hits`` counts the subset of ``hits`` that were answered by the
    attached shared :class:`~repro.engine.store.ResultStore` rather than
    this session's own in-memory dict.
    """

    hits: int = 0
    misses: int = 0
    store_hits: int = 0

    @property
    def requests(self) -> int:
        """Total requests served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from cache (0 when none served)."""
        return self.hits / self.requests if self.requests else 0.0


class AnalysisSession:
    """Uniform, cached, batchable access to every analysis of one model.

    Parameters
    ----------
    model:
        The decorated attack tree (cd-AT or cdp-AT) to analyze.
    registry:
        Backend registry to resolve requests against; defaults to the
        process-wide registry with all built-in backends.
    store:
        Optional shared :class:`~repro.engine.store.ResultStore` backing
        the in-memory cache (read-through/write-through).  A result not in
        this session's dict is looked up in the store before being
        computed, and every computed result is written back — so separate
        sessions, repeated processes and pool workers share work through
        one store file.  A store that fails mid-session (disk full, lock
        timeout) degrades the session to cache-off instead of aborting
        analyses.

    Examples
    --------
    >>> from repro import AnalysisRequest, AnalysisSession, Problem
    >>> from repro.attacktree import catalog
    >>> session = AnalysisSession(catalog.factory())
    >>> result = session.run(AnalysisRequest(Problem.CDPF))
    >>> result.front.values()
    [(0.0, 0.0), (1.0, 200.0), (3.0, 210.0), (5.0, 310.0)]
    >>> session.run(AnalysisRequest(Problem.CDPF)).cache_hit
    True
    """

    def __init__(
        self,
        model: Model,
        registry: Optional[BackendRegistry] = None,
        store: Optional["ResultStore"] = None,
    ) -> None:
        self.model = model
        self.registry = registry if registry is not None else shared_registry()
        self.store = store
        # A store that breaks mid-session (disk full, lock timeout, file
        # corrupted underneath us) must not abort analyses that would have
        # succeeded without any cache: the first StoreError degrades the
        # session to cache-off and the store is not touched again.
        self._store_broken = False
        # Computed lazily: the fingerprint only matters once a result is
        # cached, and facades construct sessions they may never query.
        self._fingerprint: Optional[str] = None
        self._cache: Dict[Tuple, AnalysisResult] = {}
        self._lock = threading.Lock()
        self.stats = SessionStats()

    # ------------------------------------------------------------------ #
    # model facts
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """The model's content hash (cache key prefix), computed on demand."""
        if self._fingerprint is None:
            self._fingerprint = model_fingerprint(self.model)
        return self._fingerprint

    @property
    def is_treelike(self) -> bool:
        """Whether the underlying AT is treelike."""
        return self.model.tree.is_treelike

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _key(self, request: AnalysisRequest) -> Tuple:
        return (self.fingerprint,) + request.cache_key()

    def run(self, request: AnalysisRequest) -> AnalysisResult:
        """Execute one request, serving repeats from the session cache.

        Cache hits return a result flagged ``cache_hit=True`` whose
        ``wall_time_seconds`` is the original computation's time.
        """
        key = self._key(request)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.hits += 1
        if cached is not None:
            obs_families.session_cache_total().inc(result="hit")
            # The extras deep-copy in as_cache_hit is O(result size); do it
            # outside the lock so parallel batches don't serialize on hits
            # (the stored entry is never mutated, so this is safe).
            return cached.as_cache_hit()
        stored = self._from_store(request)
        if stored is not None:
            return stored.as_cache_hit()
        result = run_request(self.model, request, self.registry)
        with self._lock:
            # Store a detached copy: extras is mutable, and the caller gets
            # the original object back — their mutations must not leak into
            # what future cache hits observe.
            self._cache.setdefault(
                key, replace(result, extras=copy.deepcopy(result.extras))
            )
            self.stats.misses += 1
        obs_families.session_cache_total().inc(result="miss")
        self._store_put(request, result)
        return result

    def _store_put(self, request: AnalysisRequest, result: AnalysisResult) -> None:
        """Write-through to the shared store; failures degrade, never abort."""
        if self.store is None or self._store_broken:
            return
        from .store import StoreError

        try:
            self.store.put(self.fingerprint, request, result)
        except StoreError:
            self._store_broken = True

    def _from_store(
        self, request: AnalysisRequest, count_hit: bool = True
    ) -> Optional[AnalysisResult]:
        """Read-through: fetch a miss from the shared store, if one is set.

        A store answer is installed in the in-memory dict (normalized to
        ``cache_hit=False``, like a freshly computed entry) and recorded in
        ``stats.store_hits``; returns ``None`` on a genuine miss.  With
        ``count_hit=False`` the overall hit counter is left to the caller
        (the batch paths account hits and misses for the whole batch at
        once).
        """
        if self.store is None or self._store_broken:
            return None
        from .store import StoreError

        try:
            stored = self.store.get(self.fingerprint, request)
        except StoreError:
            self._store_broken = True
            return None
        if stored is None:
            return None
        detached = replace(
            stored, cache_hit=False, extras=copy.deepcopy(stored.extras)
        )
        with self._lock:
            self._cache.setdefault(self._key(request), detached)
            if count_hit:
                self.stats.hits += 1
            self.stats.store_hits += 1
        obs_families.session_cache_total().inc(result="store_hit")
        return detached

    def run_batch(
        self,
        requests: Sequence[AnalysisRequest],
        parallel: bool = False,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
    ) -> List[AnalysisResult]:
        """Execute many requests, preserving input order.

        Parameters
        ----------
        requests:
            The analyses to run.
        parallel:
            Back-compat switch: ``True`` without an explicit ``executor``
            selects the thread pool (the pre-executor behaviour).
        max_workers:
            Pool size for the parallel executors (default: batch size
            capped at 8).
        executor:
            ``"sequential"``, ``"thread"`` or ``"process"``; ``None``
            derives it from ``parallel``.  The thread executor shares the
            (thread-safe) cache, though two concurrent identical requests
            may both compute before one wins the cache slot.  The process
            executor serves cache hits in the parent, computes duplicate
            misses once, and requires the default backend registry (worker
            processes resolve backends against their own shared registry,
            where custom backends would not exist).
        """
        requests = list(requests)
        if executor is None:
            executor = "thread" if parallel else "sequential"
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{', '.join(EXECUTORS)}"
            )
        if executor == "process":
            return self._run_batch_process(requests, max_workers)
        if executor == "sequential" or len(requests) <= 1:
            return [self.run(request) for request in requests]
        workers = max_workers or min(len(requests), 8)
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.run, requests))

    def _run_batch_process(
        self, requests: List[AnalysisRequest], max_workers: Optional[int]
    ) -> List[AnalysisResult]:
        """Process-pool batch: hits from cache, misses computed out-of-process."""
        if self.registry is not shared_registry():
            raise ValueError(
                "the process executor requires the default backend registry "
                "(worker processes cannot see a custom registry); use "
                "executor='thread' for custom backends"
            )
        # Validate and resolve everything up front, in the parent, so a
        # malformed request fails with a clean error before any process
        # spawns or any earlier analysis runs.
        for request in requests:
            request.validate()
            backend = self.registry.resolve(
                request.problem, self.model, backend=request.backend
            )
            backend.validate_options(request)
        # Partition into cache hits (served here) and misses (dispatched);
        # identical misses share one computation.
        outputs: List[Optional[AnalysisResult]] = [None] * len(requests)
        pending: Dict[Tuple, "Future[Dict[str, Any]]"] = {}
        pending_indices: Dict[Tuple, List[int]] = {}
        store_answers = 0
        with self._lock:
            cached = {
                index: self._cache.get(self._key(request))
                for index, request in enumerate(requests)
            }
        if self.store is not None:
            # Read-through before spawning anything: results another process
            # (or a previous run) already computed are served here, in the
            # parent.  Each store answer is installed in the in-memory dict,
            # so duplicates consult the store only once; hit/miss totals are
            # handled by the unified accounting below (count_hit=False —
            # only the store_hits breakdown is recorded here).
            for index, request in enumerate(requests):
                if cached[index] is not None:
                    continue
                with self._lock:
                    entry = self._cache.get(self._key(request))
                if entry is None:
                    entry = self._from_store(request, count_hit=False)
                    if entry is not None:
                        store_answers += 1
                cached[index] = entry
        misses = [
            (index, request)
            for index, request in enumerate(requests)
            if cached[index] is None
        ]
        for index, entry in cached.items():
            if entry is not None:
                outputs[index] = entry.as_cache_hit()
        unique_misses = len({self._key(request) for _, request in misses})
        with self._lock:
            self.stats.hits += len(requests) - unique_misses
            self.stats.misses += unique_misses
        # Counter events stay disjoint: store answers already counted
        # themselves as result="store_hit" inside _from_store.
        hit_events = len(requests) - unique_misses - store_answers
        if hit_events > 0:
            obs_families.session_cache_total().inc(hit_events, result="hit")
        if unique_misses > 0:
            obs_families.session_cache_total().inc(unique_misses, result="miss")
        if misses:
            model_payload = serialization.to_dict(self.model)
            workers = max_workers or min(len(misses), 8)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_process_initializer,
                initargs=(model_payload,),
            ) as pool:
                for index, request in misses:
                    key = self._key(request)
                    if key not in pending:
                        pending[key] = pool.submit(
                            _process_worker, request.to_dict()
                        )
                        pending_indices[key] = []
                    pending_indices[key].append(index)
                for key, future in pending.items():
                    result = AnalysisResult.from_dict(future.result())
                    with self._lock:
                        self._cache.setdefault(
                            key, replace(result, extras=copy.deepcopy(result.extras))
                        )
                    # Populate the shared store with what the workers
                    # computed, so other processes (and the next run) see it.
                    self._store_put(result.request, result)
                    first, *rest = pending_indices[key]
                    outputs[first] = result
                    for index in rest:
                        # Duplicates within one batch were computed once;
                        # report them as the cache hits they effectively are.
                        outputs[index] = result.as_cache_hit()
        assert all(output is not None for output in outputs)
        return outputs  # type: ignore[return-value]

    def resolve(self, problem: Problem, backend: Optional[str] = None):
        """The backend a request for ``problem`` would run on this model."""
        return self.registry.resolve(problem, self.model, backend=backend)

    # ------------------------------------------------------------------ #
    # cache management
    # ------------------------------------------------------------------ #
    def clear_cache(self) -> int:
        """Drop every cached result; returns how many were dropped."""
        with self._lock:
            dropped = len(self._cache)
            self._cache.clear()
        return dropped

    def cached_results(self) -> List[AnalysisResult]:
        """A snapshot of the currently cached results.

        Detached copies: mutating a returned result's ``extras`` must not
        corrupt what future cache hits observe.
        """
        with self._lock:
            return [
                replace(result, extras=copy.deepcopy(result.extras))
                for result in self._cache.values()
            ]

    # ------------------------------------------------------------------ #
    # convenience constructors for the six problems
    # ------------------------------------------------------------------ #
    def pareto_front(self, backend: Optional[str] = None, **options) -> AnalysisResult:
        """Problem CDPF."""
        return self.run(AnalysisRequest(Problem.CDPF, backend=backend, options=options))

    def max_damage(
        self, budget: float, backend: Optional[str] = None, **options
    ) -> AnalysisResult:
        """Problem DgC."""
        return self.run(
            AnalysisRequest(Problem.DGC, budget=budget, backend=backend, options=options)
        )

    def min_cost(
        self, threshold: float, backend: Optional[str] = None, **options
    ) -> AnalysisResult:
        """Problem CgD."""
        return self.run(
            AnalysisRequest(
                Problem.CGD, threshold=threshold, backend=backend, options=options
            )
        )

    def expected_pareto_front(
        self, backend: Optional[str] = None, **options
    ) -> AnalysisResult:
        """Problem CEDPF."""
        return self.run(AnalysisRequest(Problem.CEDPF, backend=backend, options=options))

    def max_expected_damage(
        self, budget: float, backend: Optional[str] = None, **options
    ) -> AnalysisResult:
        """Problem EDgC."""
        return self.run(
            AnalysisRequest(Problem.EDGC, budget=budget, backend=backend, options=options)
        )

    def min_cost_expected(
        self, threshold: float, backend: Optional[str] = None, **options
    ) -> AnalysisResult:
        """Problem CgED."""
        return self.run(
            AnalysisRequest(
                Problem.CGED, threshold=threshold, backend=backend, options=options
            )
        )
