"""The solver-backend abstraction of the analysis engine.

A *backend* is one algorithm family (bottom-up propagation, BILP,
enumeration, NSGA-II, …) wrapped behind a uniform interface.  Each backend
declares the :class:`Capability` cells it covers — a cell is a
``(problem, shape, setting)`` triple mirroring Table I of the paper, where
*shape* distinguishes treelike from DAG-like ATs and *setting* deterministic
from probabilistic analyses.  The registry (:mod:`repro.engine.registry`)
resolves a request to a backend purely from this declared data; no caller
ever branches on an algorithm enum again.

Backends receive the model plus the :class:`~repro.engine.requests
.AnalysisRequest` and return a :class:`BackendOutput` carrying the front or
value/witness pair, plus any backend-specific extras (e.g. Monte-Carlo
standard errors).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional, Protocol, Union, runtime_checkable

from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..core.problems import Problem
from ..pareto.front import ParetoFront

__all__ = [
    "Model",
    "Shape",
    "Setting",
    "Capability",
    "BackendOutput",
    "SolverBackend",
    "model_shape",
    "problem_setting",
    "require_probabilistic",
    "as_deterministic",
]

Model = Union[CostDamageAT, CostDamageProbAT]


class Shape(enum.Enum):
    """Structural shape of the underlying attack tree (Table I columns)."""

    TREE = "tree"
    DAG = "dag"


class Setting(enum.Enum):
    """Deterministic vs probabilistic analysis (Table I rows)."""

    DETERMINISTIC = "deterministic"
    PROBABILISTIC = "probabilistic"


@dataclass(frozen=True)
class Capability:
    """One cell of the capability matrix a backend covers.

    Attributes
    ----------
    problem:
        The cost-damage problem the backend can answer.
    shape:
        The tree shape the backend handles for this problem.
    setting:
        The analysis setting of the problem (redundant with
        ``problem.is_probabilistic`` for the paper's six problems, but kept
        explicit so future mixed-setting backends can be described).
    """

    problem: Problem
    shape: Shape
    setting: Setting


def problem_setting(problem: Problem) -> Setting:
    """The setting a problem belongs to (Table I row)."""
    return Setting.PROBABILISTIC if problem.is_probabilistic else Setting.DETERMINISTIC


def model_shape(model: Model) -> Shape:
    """The shape of a model (Table I column)."""
    return Shape.TREE if model.tree.is_treelike else Shape.DAG


def require_probabilistic(model: Model, problem: Problem) -> CostDamageProbAT:
    """Fail with the library's canonical error when a cdp-AT is required."""
    if not isinstance(model, CostDamageProbAT):
        raise TypeError(
            f"problem {problem.value} needs a cdp-AT (with success probabilities); "
            "got a deterministic cd-AT"
        )
    return model


def as_deterministic(model: Model) -> CostDamageAT:
    """Project a model onto its deterministic part (drop probabilities)."""
    if isinstance(model, CostDamageProbAT):
        return model.deterministic()
    return model


@dataclass(frozen=True)
class BackendOutput:
    """What a backend produces: a front or a value/witness pair, plus extras."""

    front: Optional[ParetoFront] = None
    value: Optional[float] = None
    witness: Optional[FrozenSet[str]] = None
    extras: Dict[str, Any] = field(default_factory=dict)


@runtime_checkable
class SolverBackend(Protocol):
    """The interface every analysis backend implements.

    Attributes
    ----------
    name:
        Stable identifier used in requests, results and error messages.
    exact:
        Whether the backend computes exact answers.  Automatic resolution
        only ever selects exact backends; approximate ones (genetic,
        Monte-Carlo) must be requested by name.
    priority:
        Tie-breaker among exact backends covering the same cell; higher
        wins.  The defaults encode Table I's preferences (bottom-up over
        BILP over enumeration).
    capabilities:
        The cells this backend covers.
    """

    name: str
    exact: bool
    priority: int
    capabilities: FrozenSet[Capability]

    def solve(self, model: Model, request: "AnalysisRequest") -> BackendOutput:
        """Answer ``request`` on ``model``; only called for covered cells."""
        ...

    def covers(self, problem: Problem, shape: Shape, setting: Setting) -> bool:
        """Whether this backend covers the given cell."""
        ...

    def unsupported_reason(
        self, problem: Problem, shape: Shape, setting: Setting
    ) -> Optional[str]:
        """A backend-specific explanation for an uncovered cell, if any."""
        ...

    def validate_options(self, request: "AnalysisRequest") -> None:
        """Raise ``ValueError`` for unknown or wrongly-typed request options."""
        ...


class BaseBackend:
    """Convenience base class implementing the protocol's bookkeeping.

    Subclasses populate :attr:`handlers` — a plain mapping from
    :class:`Problem` to a callable ``(model, request) -> BackendOutput`` —
    so that per-problem dispatch is a data lookup, not an if/elif chain.
    They also declare :attr:`options_spec`, the options they accept and the
    types those accept, so typo'd or mistyped options fail loudly at
    validation time instead of silently running with defaults (or crashing
    deep inside a solver).
    """

    name: str = "base"
    exact: bool = True
    priority: int = 0
    capabilities: FrozenSet[Capability] = frozenset()
    #: Accepted request options: name -> tuple of allowed types.  Booleans
    #: never satisfy a numeric spec (bool subclasses int in Python).
    options_spec: Dict[str, tuple] = {}

    def validate_options(self, request: "AnalysisRequest") -> None:
        """Reject unknown option keys and wrongly-typed option values."""
        options = request.options_dict()
        unknown = set(options) - set(self.options_spec)
        if unknown:
            known = ", ".join(sorted(self.options_spec)) or "(none)"
            raise ValueError(
                f"backend {self.name!r} does not accept option(s) "
                f"{sorted(unknown)}; known options: {known}"
            )
        for key, value in options.items():
            allowed = self.options_spec[key]
            if isinstance(value, bool) or not isinstance(value, allowed):
                names = "/".join(t.__name__ for t in allowed)
                raise ValueError(
                    f"option {key!r} of backend {self.name!r} must be "
                    f"{names}, got {value!r}"
                )

    def covers(self, problem: Problem, shape: Shape, setting: Setting) -> bool:
        return Capability(problem, shape, setting) in self.capabilities

    def unsupported_reason(
        self, problem: Problem, shape: Shape, setting: Setting
    ) -> Optional[str]:
        return None

    def cell_label(self, shape: Shape, setting: Setting) -> str:
        """Human-readable Table I entry for a cell this backend resolves."""
        return self.name

    def solve(self, model: Model, request: "AnalysisRequest") -> BackendOutput:
        try:
            handler = self.handlers[request.problem]
        except (AttributeError, KeyError):
            raise ValueError(
                f"backend {self.name!r} has no handler for problem "
                f"{request.problem.value!r}"
            ) from None
        return handler(model, request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "exact" if self.exact else "approximate"
        return f"<{type(self).__name__} {self.name!r} ({kind}, priority={self.priority})>"


def cells(problem_iterable, shapes, setting: Setting) -> FrozenSet[Capability]:
    """Build the capability set for a cartesian product of cells."""
    return frozenset(
        Capability(problem, shape, setting)
        for problem in problem_iterable
        for shape in shapes
    )
