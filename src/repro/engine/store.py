"""Shared persistent result stores: out-of-process caching for sessions.

A *result store* maps ``(model fingerprint, request)`` to a previously
computed :class:`~repro.engine.requests.AnalysisResult`.  The key layout is
exactly the one :class:`~repro.engine.session.AnalysisSession` already uses
for its in-process dict — the fingerprint is the SHA-256 of the model's
canonical JSON, the request identity is :meth:`AnalysisRequest.cache_key`
(problem, budget, threshold, backend, options) — so a store is simply the
session cache made durable: repeated bench runs, process-pool workers and
entirely separate processes all share results instead of recomputing them.

Two implementations are provided:

:class:`SqliteStore`
    The persistent one: a single sqlite file, safe for concurrent readers
    and writers across threads *and* processes (WAL journaling plus
    sqlite's own file locking with a busy timeout).  The schema is
    versioned; opening a file written by an incompatible schema fails with
    a clear :class:`StoreError` instead of serving garbage.
:class:`InMemoryStore`
    A dict with the same interface, for tests and for sharing results
    between sessions within one process without touching disk.

A third implementation lives in :mod:`repro.net`:
:class:`~repro.net.HttpStore` speaks to an ``atcd serve`` broker over
JSON/HTTP, for multi-host deployments with no shared filesystem;
:func:`open_store` dispatches ``http(s)://`` URLs to it.

Every stored record embeds its own fingerprint and request identity and is
re-verified on read — a row that was tampered with, corrupted, or re-keyed
(cache poisoning) is *rejected*, never served.  Invalidation is therefore
automatic on model change (a different model has a different fingerprint
and simply never matches) and explicit via :meth:`ResultStore.prune`.
"""

from __future__ import annotations

import json
import os
import re
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Protocol, Tuple, runtime_checkable

from ..obs import families as obs_families
from .requests import AnalysisRequest, AnalysisResult

__all__ = [
    "STORE_SCHEMA_VERSION",
    "StoreError",
    "StoreStats",
    "ResultStore",
    "InMemoryStore",
    "NamespacedStore",
    "SqliteStore",
    "open_store",
    "request_key",
]

#: Version of the persisted record/table layout.  Bump on any incompatible
#: change; old files then fail loudly instead of being misread.
STORE_SCHEMA_VERSION = 1


class StoreError(ValueError):
    """A store file is unusable: corrupted, locked out, or wrong schema.

    Subclasses ``ValueError`` so CLI entry points report it as a one-line
    user error (exit code 2), consistent with the other engine errors.
    """


def _canonical_json_value(value: Any) -> Any:
    """Normalize numbers so int/float spellings of one value share a key.

    The session's in-memory dict follows Python's numeric hashing, where
    ``budget=2`` and ``budget=2.0`` are the same key; their JSON spellings
    differ.  Writing integral floats as ints makes both produce the same
    store key, keeping the store's identity exactly as wide as the
    session's.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, (list, tuple)):
        return [_canonical_json_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _canonical_json_value(item) for key, item in value.items()}
    return value


def request_key(request: AnalysisRequest) -> str:
    """The canonical string identity of a request, used as the store key.

    A sorted-keys JSON encoding of exactly the fields
    :meth:`AnalysisRequest.cache_key` hashes (problem, budget, threshold,
    backend, options), with integral floats normalized to ints — identical
    across processes and equal whenever the session's in-memory keys are.
    """
    return json.dumps(_canonical_json_value(request.to_dict()), sort_keys=True)


@dataclass
class StoreStats:
    """Per-instance counters of one store (not persisted)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Lookups that found a row but refused to serve it: embedded identity
    #: did not match the key (tampering/corruption) or the payload did not
    #: parse.  Rejected lookups also count as misses.
    rejected: int = 0


# Process-wide counters beside the per-instance StoreStats: every store in
# this process (memory or sqlite; NamespacedStore delegates, so wrapped
# stores count once) feeds the same exposition families.
def _record_lookup(result: str) -> None:
    obs_families.store_lookups_total().inc(result=result)


def _record_write(payload_bytes: int) -> None:
    obs_families.store_writes_total().inc()
    obs_families.store_written_bytes_total().inc(payload_bytes)


def _record_evictions(count: int, reason: str) -> None:
    if count > 0:
        obs_families.store_evictions_total().inc(count, reason=reason)


def _encode_record(
    fingerprint: str, key: str, result: AnalysisResult
) -> str:
    """Serialize one store value, embedding its own identity for the guard."""
    return json.dumps(
        {
            "store_schema": STORE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "request_key": key,
            "result": result.to_dict(),
        },
        sort_keys=True,
    )


def _decode_record(
    payload: str, fingerprint: str, key: str
) -> Optional[AnalysisResult]:
    """Parse and verify one store value; ``None`` when it must not be served.

    The guard re-checks the *embedded* identity against the requested one:
    a row whose key columns were rewritten to a different model or request
    (cache poisoning) still carries its original identity inside the
    payload and is rejected here.
    """
    try:
        record = json.loads(payload)
        if not isinstance(record, dict):
            return None
        if record.get("store_schema") != STORE_SCHEMA_VERSION:
            return None
        if record.get("fingerprint") != fingerprint:
            return None
        if record.get("request_key") != key:
            return None
        result = AnalysisResult.from_dict(record["result"])
    except (ValueError, TypeError, KeyError):
        return None
    # Belt and braces: the result's own request must agree with the key it
    # is being served under.
    if request_key(result.request) != key:
        return None
    return result


def _validate_eviction_bounds(
    ttl_seconds: Optional[float], max_bytes: Optional[int]
) -> None:
    if ttl_seconds is not None and ttl_seconds < 0:
        raise ValueError(
            f"ttl_seconds must be non-negative, got {ttl_seconds!r}"
        )
    if max_bytes is not None and max_bytes < 0:
        raise ValueError(f"max_bytes must be non-negative, got {max_bytes!r}")


@runtime_checkable
class ResultStore(Protocol):
    """What sessions, the bench harness and the CLI require of a store."""

    stats: StoreStats

    def get(
        self, fingerprint: str, request: AnalysisRequest
    ) -> Optional[AnalysisResult]:
        """The stored result for ``(fingerprint, request)``, or ``None``."""
        ...

    def put(
        self, fingerprint: str, request: AnalysisRequest, result: AnalysisResult
    ) -> None:
        """Persist one result (last writer wins on the same key)."""
        ...

    def prune(self, fingerprint: Optional[str] = None) -> int:
        """Delete stored results (optionally one model's); returns count."""
        ...

    def evict(
        self,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Age/size-bounded eviction (oldest first); returns count dropped."""
        ...

    def __len__(self) -> int:
        """Number of stored results."""
        ...

    def summary(self) -> Dict[str, Any]:
        """JSON-compatible description for ``atcd store stats``."""
        ...

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""
        ...


class InMemoryStore:
    """A process-local :class:`ResultStore`: the sqlite semantics, no disk.

    Useful in tests and when several sessions over the *same* model family
    should share results within one process.  Thread-safe; values are
    stored in their serialized form so the round-trip (and the poisoning
    guard) behaves identically to :class:`SqliteStore`.
    """

    def __init__(self) -> None:
        #: key -> (serialized record, created-unix) — the timestamp feeds
        #: the same TTL/size eviction the sqlite store offers.
        self._rows: Dict[Tuple[str, str], Tuple[str, float]] = {}
        self._lock = threading.Lock()
        self.stats = StoreStats()

    def get(
        self, fingerprint: str, request: AnalysisRequest
    ) -> Optional[AnalysisResult]:
        key = request_key(request)
        with self._lock:
            entry = self._rows.get((fingerprint, key))
        payload = entry[0] if entry is not None else None
        if payload is None:
            self.stats.misses += 1
            _record_lookup("miss")
            return None
        result = _decode_record(payload, fingerprint, key)
        if result is None:
            self.stats.rejected += 1
            self.stats.misses += 1
            _record_lookup("rejected")
            return None
        self.stats.hits += 1
        _record_lookup("hit")
        return result

    def put(
        self, fingerprint: str, request: AnalysisRequest, result: AnalysisResult
    ) -> None:
        key = request_key(request)
        payload = _encode_record(fingerprint, key, result)
        with self._lock:
            self._rows[(fingerprint, key)] = (payload, time.time())
        self.stats.writes += 1
        _record_write(len(payload))

    def prune(self, fingerprint: Optional[str] = None) -> int:
        with self._lock:
            if fingerprint is None:
                dropped = len(self._rows)
                self._rows.clear()
                return dropped
            doomed = [k for k in self._rows if k[0] == fingerprint]
            for k in doomed:
                del self._rows[k]
            return len(doomed)

    def evict(
        self,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Oldest-first eviction; ``max_bytes`` bounds total payload bytes."""
        _validate_eviction_bounds(ttl_seconds, max_bytes)
        dropped = 0
        with self._lock:
            if ttl_seconds is not None:
                cutoff = time.time() - ttl_seconds
                doomed = [
                    key for key, (_, created) in self._rows.items()
                    if created < cutoff
                ]
                for key in doomed:
                    del self._rows[key]
                dropped += len(doomed)
                _record_evictions(len(doomed), "ttl")
            if max_bytes is not None:
                oldest_first = sorted(
                    self._rows.items(), key=lambda item: item[1][1]
                )
                total = sum(len(payload) for _, (payload, _) in oldest_first)
                size_dropped = 0
                for key, (payload, _) in oldest_first:
                    if total <= max_bytes:
                        break
                    del self._rows[key]
                    total -= len(payload)
                    size_dropped += 1
                dropped += size_dropped
                _record_evictions(size_dropped, "size")
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            fingerprints = {k[0] for k in self._rows}
            entries = len(self._rows)
        return {
            "kind": "memory",
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": entries,
            "models": len(fingerprints),
        }

    def close(self) -> None:
        pass

    def __enter__(self) -> "InMemoryStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


#: Grammar of store namespaces (tenant names).  The namespace becomes a
#: key prefix, so it must be distinguishable from raw fingerprints: the
#: separator is ``/``, which cannot appear in a hex SHA-256 digest, and the
#: namespace itself may not contain it.
_NAMESPACE_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


class NamespacedStore:
    """A view of another store under a fingerprint namespace.

    Multi-tenant isolation for the service layer: each tenant's results
    live under fingerprint ``<namespace>/<model-fingerprint>``, so two
    tenants submitting the *same* model never read — and can never
    poison — each other's cache rows.  The embedded-identity guard keeps
    working unchanged because writes and reads both happen under the
    namespaced fingerprint: the record embeds it, the lookup re-checks it.

    The wrapper delegates storage (and the shared ``stats`` counters) to
    the underlying store; ``evict``/``summary``/``__len__``/``close`` are
    store-wide pass-throughs.  ``prune(None)`` — "delete everything" — is
    refused through a namespaced view: the protocol has no prefix-scoped
    delete, and silently wiping *other* tenants' rows would be exactly the
    cross-tenant damage this wrapper exists to prevent.
    """

    def __init__(self, store: "ResultStore", namespace: str) -> None:
        if not isinstance(namespace, str) or not _NAMESPACE_PATTERN.fullmatch(
            namespace
        ):
            raise StoreError(
                f"invalid store namespace {namespace!r}: namespaces are 1-64 "
                "characters from [A-Za-z0-9_.-], starting with a letter or digit"
            )
        self._store = store
        self.namespace = namespace

    @property
    def stats(self) -> StoreStats:
        return self._store.stats

    def _key(self, fingerprint: str) -> str:
        return f"{self.namespace}/{fingerprint}"

    def get(
        self, fingerprint: str, request: AnalysisRequest
    ) -> Optional[AnalysisResult]:
        return self._store.get(self._key(fingerprint), request)

    def put(
        self, fingerprint: str, request: AnalysisRequest, result: AnalysisResult
    ) -> None:
        self._store.put(self._key(fingerprint), request, result)

    def prune(self, fingerprint: Optional[str] = None) -> int:
        if fingerprint is None:
            raise StoreError(
                "cannot prune all results through a namespaced view; "
                "prune the underlying store instead"
            )
        return self._store.prune(self._key(fingerprint))

    def evict(
        self,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        return self._store.evict(ttl_seconds=ttl_seconds, max_bytes=max_bytes)

    def __len__(self) -> int:
        return len(self._store)

    def summary(self) -> Dict[str, Any]:
        summary = dict(self._store.summary())
        summary["namespace"] = self.namespace
        return summary

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "NamespacedStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SqliteStore:
    """A persistent, concurrency-safe :class:`ResultStore` in one sqlite file.

    Parameters
    ----------
    path:
        Database file; created (with its schema) when absent.
    timeout:
        Seconds a writer waits for sqlite's file lock before failing —
        this is what makes concurrent writers from several processes
        serialize instead of erroring.

    The connection is shared across threads behind a lock; cross-process
    concurrency is handled by sqlite itself (WAL journaling where the
    filesystem supports it).  Opening a non-database file or a file written
    by a different schema version raises :class:`StoreError`.
    """

    def __init__(self, path: str, timeout: float = 30.0) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self.stats = StoreStats()
        self._closed = False
        self._connection: Optional[sqlite3.Connection] = None
        try:
            self._connection = sqlite3.connect(
                self.path, timeout=timeout, check_same_thread=False
            )
            # WAL lets readers proceed while a writer commits; sqlite falls
            # back transparently where the filesystem cannot support it.
            self._connection.execute("PRAGMA journal_mode=WAL")
            self._initialize_schema()
        except sqlite3.Error as error:
            if self._connection is not None:
                self._connection.close()
            raise StoreError(
                f"cannot open result store {self.path!r}: {error}"
            ) from error

    def _initialize_schema(self) -> None:
        # Never bless a foreign database: a file that already has tables
        # but none of ours is some other application's data — creating our
        # schema inside it (even from a read-only-in-spirit command like
        # `atcd store stats`) would be silent corruption.
        has_meta = self._connection.execute(
            "SELECT COUNT(*) FROM sqlite_master "
            "WHERE type = 'table' AND name = 'store_meta'"
        ).fetchone()[0]
        foreign = self._connection.execute(
            "SELECT COUNT(*) FROM sqlite_master "
            "WHERE type IN ('table', 'view') "
            "AND name NOT IN ('store_meta', 'results') "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchone()[0]
        if foreign and not has_meta:
            self._connection.close()
            raise StoreError(
                f"{self.path!r} is not a result store: it contains unrelated "
                "tables; refusing to create the store schema inside it"
            )
        with self._connection:
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS store_meta ("
                " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " fingerprint TEXT NOT NULL,"
                " request_key TEXT NOT NULL,"
                " problem TEXT NOT NULL,"
                " backend TEXT NOT NULL,"
                " payload TEXT NOT NULL,"
                " created_unix REAL NOT NULL,"
                " PRIMARY KEY (fingerprint, request_key))"
            )
            row = self._connection.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                # Only an *empty* store may be stamped with this build's
                # version: rows of unknown vintage must not be blessed.
                entries = self._connection.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()[0]
                if not entries:
                    self._connection.execute(
                        "INSERT OR IGNORE INTO store_meta (key, value) "
                        "VALUES (?, ?)",
                        ("schema_version", str(STORE_SCHEMA_VERSION)),
                    )
                    row = (str(STORE_SCHEMA_VERSION),)
        if row is None or row[0] != str(STORE_SCHEMA_VERSION):
            found = None if row is None else row[0]
            self._connection.close()
            raise StoreError(
                f"result store {self.path!r} has schema version {found!r}; "
                f"this build reads version {STORE_SCHEMA_VERSION}. "
                "Recreate the store (or prune it with a matching build)."
            )

    def _execute(self, sql: str, parameters: Tuple[Any, ...] = ()) -> sqlite3.Cursor:
        if self._closed:
            raise StoreError(f"result store {self.path!r} is closed")
        try:
            with self._lock, self._connection:
                return self._connection.execute(sql, parameters)
        except sqlite3.Error as error:
            raise StoreError(
                f"result store {self.path!r} failed: {error}"
            ) from error

    # ------------------------------------------------------------------ #
    # ResultStore interface
    # ------------------------------------------------------------------ #
    def get(
        self, fingerprint: str, request: AnalysisRequest
    ) -> Optional[AnalysisResult]:
        key = request_key(request)
        row = self._execute(
            "SELECT payload FROM results WHERE fingerprint = ? AND request_key = ?",
            (fingerprint, key),
        ).fetchone()
        if row is None:
            self.stats.misses += 1
            _record_lookup("miss")
            return None
        result = _decode_record(row[0], fingerprint, key)
        if result is None:
            self.stats.rejected += 1
            self.stats.misses += 1
            _record_lookup("rejected")
            return None
        self.stats.hits += 1
        _record_lookup("hit")
        return result

    def put(
        self, fingerprint: str, request: AnalysisRequest, result: AnalysisResult
    ) -> None:
        key = request_key(request)
        payload = _encode_record(fingerprint, key, result)
        self._execute(
            "INSERT OR REPLACE INTO results "
            "(fingerprint, request_key, problem, backend, payload, created_unix) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                key,
                request.problem.value,
                result.backend,
                payload,
                time.time(),
            ),
        )
        self.stats.writes += 1
        _record_write(len(payload))

    def prune(self, fingerprint: Optional[str] = None) -> int:
        if fingerprint is None:
            cursor = self._execute("DELETE FROM results")
        else:
            cursor = self._execute(
                "DELETE FROM results WHERE fingerprint = ?", (fingerprint,)
            )
        return cursor.rowcount

    def _vacuum(self) -> None:
        """Reclaim deleted pages so the file size reflects the contents.

        Checkpoints the WAL first — ``os.path.getsize`` only sees the main
        database file, and eviction's size bound must measure what actually
        stays on disk.
        """
        if self._closed:
            raise StoreError(f"result store {self.path!r} is closed")
        try:
            with self._lock:
                # Both statements run in autocommit (VACUUM refuses to run
                # inside a transaction, and _execute's context manager
                # would start one).
                self._connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
                self._connection.execute("VACUUM")
        except sqlite3.Error as error:
            raise StoreError(
                f"result store {self.path!r} failed: {error}"
            ) from error

    def evict(
        self,
        ttl_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> int:
        """Age/size-bounded eviction, oldest rows first.

        ``ttl_seconds`` drops every result older than that horizon;
        ``max_bytes`` then deletes oldest-first in batches (vacuuming
        between rounds) until the database *file* fits under the bound or
        is empty — an empty store keeps its fixed page overhead, so a
        bound below ~16 KiB empties the store without erroring.  This is
        what keeps long-lived queue/worker deployments from growing the
        store without limit.
        """
        _validate_eviction_bounds(ttl_seconds, max_bytes)
        if ttl_seconds is None and max_bytes is None:
            return 0
        dropped = 0
        if ttl_seconds is not None:
            cutoff = time.time() - ttl_seconds
            ttl_dropped = self._execute(
                "DELETE FROM results WHERE created_unix < ?", (cutoff,)
            ).rowcount
            dropped += ttl_dropped
            _record_evictions(ttl_dropped, "ttl")
        if max_bytes is not None:
            size_dropped = 0
            while True:
                self._vacuum()
                try:
                    size = os.path.getsize(self.path)
                except OSError:
                    break
                if size <= max_bytes:
                    break
                entries = len(self)
                if entries == 0:
                    break
                batch = max(1, entries // 4)
                cursor = self._execute(
                    "DELETE FROM results WHERE rowid IN ("
                    " SELECT rowid FROM results"
                    " ORDER BY created_unix ASC, rowid ASC LIMIT ?)",
                    (batch,),
                )
                if cursor.rowcount == 0:
                    break
                size_dropped += cursor.rowcount
            dropped += size_dropped
            _record_evictions(size_dropped, "size")
        elif dropped:
            self._vacuum()
        return dropped

    def __len__(self) -> int:
        row = self._execute("SELECT COUNT(*) FROM results").fetchone()
        return int(row[0])

    def summary(self) -> Dict[str, Any]:
        entries = len(self)
        models = int(
            self._execute(
                "SELECT COUNT(DISTINCT fingerprint) FROM results"
            ).fetchone()[0]
        )
        by_cell = {
            f"{problem}/{backend}": count
            for problem, backend, count in self._execute(
                "SELECT problem, backend, COUNT(*) FROM results "
                "GROUP BY problem, backend ORDER BY problem, backend"
            ).fetchall()
        }
        try:
            size_bytes = os.path.getsize(self.path)
        except OSError:
            size_bytes = 0
        return {
            "kind": "sqlite",
            "path": self.path,
            "schema_version": STORE_SCHEMA_VERSION,
            "entries": entries,
            "models": models,
            "by_problem_backend": by_cell,
            "size_bytes": size_bytes,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self._connection is not None:
                self._connection.close()

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def open_store(path: str, must_exist: bool = False) -> ResultStore:
    """Open the result store at ``path`` — a sqlite file or a broker URL.

    This is the single URL-dispatch point of the store layer: an
    ``http://``/``https://`` value returns a :class:`repro.net.HttpStore`
    speaking to an ``atcd serve`` broker (token from
    ``$ATCD_BROKER_TOKEN``), anything else opens (or creates) a local
    :class:`SqliteStore`.

    With ``must_exist=True`` a missing file is a :class:`StoreError`
    instead of a silently created empty store — the right behaviour for
    inspection commands like ``atcd store stats``.  Broker URLs are
    always pinged (a URL cannot be "created", only reached): a typo'd
    store URL must fail here, up front, with one clear line — not
    degrade every task of a run to cache-off after a full retry budget
    each.
    """
    if path.startswith(("http://", "https://")):
        from ..net.client import HttpStore

        store = HttpStore(path)
        store.ping()
        return store
    if must_exist and not os.path.exists(path):
        raise StoreError(f"no result store at {path!r}")
    return SqliteStore(path)
