"""Typed analysis requests and results, with JSON round-tripping.

:class:`AnalysisRequest` is the engine's unit of work: which problem to
solve, its scalar parameter (budget or threshold), optionally a backend
forced by name, and backend-specific options.  :class:`AnalysisResult`
carries the answer together with structured metadata — which backend
actually ran, wall-clock time, model size, whether the session cache was
hit — so service-style callers can log, bill and debug analyses without
parsing free text.

Both types serialize to plain JSON-compatible dicts (and back), which is
what the batch CLI sub-command and any future network service exchange.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from ..core.problems import Problem
from ..pareto.front import ParetoFront, ParetoPoint

__all__ = ["AnalysisRequest", "AnalysisResult"]


def _canonical_option_value(key: str, value: Any) -> Any:
    """Canonicalize one option value into a hashable form.

    Scalars pass through, JSON arrays become tuples (so requests stay
    usable as cache keys), anything else — nested objects in particular —
    is rejected eagerly with a clear error instead of surfacing later as
    an unhashable-type failure inside the session cache.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_option_value(key, item) for item in value)
    raise ValueError(
        f"option {key!r} has unsupported value {value!r}; option values must "
        "be JSON scalars or arrays of them"
    )


def _freeze_options(options: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize an options mapping into a hashable, sorted tuple."""
    if not options:
        return ()
    return tuple(
        sorted((key, _canonical_option_value(key, value)) for key, value in
               dict(options).items())
    )


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis to run against a model.

    Attributes
    ----------
    problem:
        Which of the six cost-damage problems to solve.
    budget:
        Cost budget; required by ``DGC``/``EDGC``.
    threshold:
        Damage threshold; required by ``CGD``/``CGED``.
    backend:
        Name of a registered backend to force, or ``None`` to let the
        registry resolve one following Table I.
    options:
        Backend-specific keyword options (e.g. ``samples_per_attack`` for
        the Monte-Carlo backend, ``generations`` for the genetic one).
        Stored canonically as a sorted tuple of pairs so requests are
        hashable and usable as cache keys.
    """

    problem: Problem
    budget: Optional[float] = None
    threshold: Optional[float] = None
    backend: Optional[str] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.problem, Problem):
            object.__setattr__(self, "problem", Problem(self.problem))
        # Type-check the wire fields eagerly: this type is the service wire
        # format, and a string budget must fail here with a clear message,
        # not deep inside a solver with a field-less comparison error.
        for name in ("budget", "threshold"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, (int, float))
            ):
                raise ValueError(f"{name} must be a number, got {value!r}")
        if self.backend is not None and not isinstance(self.backend, str):
            raise ValueError(f"backend must be a string name, got {self.backend!r}")
        # Normalize unconditionally: even a pre-built tuple may carry
        # unhashable values that would otherwise fail later in the cache.
        object.__setattr__(self, "options", _freeze_options(dict(self.options or ())))

    # ------------------------------------------------------------------ #
    # validation and option access
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the parameter required by the problem is present."""
        if self.problem in {Problem.DGC, Problem.EDGC} and self.budget is None:
            raise ValueError(f"problem {self.problem.value} requires a cost budget")
        if self.problem in {Problem.CGD, Problem.CGED} and self.threshold is None:
            raise ValueError(f"problem {self.problem.value} requires a damage threshold")

    def option(self, key: str, default: Any = None) -> Any:
        """Look up one backend option."""
        for name, value in self.options:
            if name == key:
                return value
        return default

    def options_dict(self) -> Dict[str, Any]:
        """The options as a plain dict."""
        return dict(self.options)

    def cache_key(self) -> Tuple[Any, ...]:
        """A hashable identity used by session caches."""
        return (self.problem.value, self.budget, self.threshold, self.backend,
                self.options)

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible representation."""
        payload: Dict[str, Any] = {"problem": self.problem.value}
        if self.budget is not None:
            payload["budget"] = self.budget
        if self.threshold is not None:
            payload["threshold"] = self.threshold
        if self.backend is not None:
            payload["backend"] = self.backend
        if self.options:
            payload["options"] = self.options_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisRequest":
        """Rebuild a request from :meth:`to_dict` output."""
        unknown = set(data) - {"problem", "budget", "threshold", "backend", "options"}
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)!r}")
        if "problem" not in data:
            raise ValueError("request is missing the 'problem' field")
        return cls(
            problem=Problem(data["problem"]),
            budget=data.get("budget"),
            threshold=data.get("threshold"),
            backend=data.get("backend"),
            options=_freeze_options(data.get("options")),
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisRequest":
        """Parse a request from a JSON string."""
        return cls.from_dict(json.loads(text))


def _front_to_list(front: ParetoFront) -> List[Dict[str, Any]]:
    points = []
    for point in front:
        entry: Dict[str, Any] = {"cost": point.cost, "damage": point.damage}
        if point.attack is not None:
            entry["attack"] = sorted(point.attack)
        if point.reaches_root is not None:
            entry["reaches_root"] = point.reaches_root
        points.append(entry)
    return points


def _front_from_list(points: List[Mapping[str, Any]]) -> ParetoFront:
    return ParetoFront(
        ParetoPoint(
            cost=entry["cost"],
            damage=entry["damage"],
            attack=None if entry.get("attack") is None else frozenset(entry["attack"]),
            reaches_root=entry.get("reaches_root"),
        )
        for entry in points
    )


@dataclass(frozen=True)
class AnalysisResult:
    """The answer to one :class:`AnalysisRequest`, with execution metadata.

    Attributes
    ----------
    request:
        The request this result answers.
    backend:
        Name of the backend that actually ran (after registry resolution).
    shape / setting:
        The resolved Table I cell, as strings (``"tree"``/``"dag"`` and
        ``"deterministic"``/``"probabilistic"``).
    front / value / witness:
        The analysis answer; fronts for CDPF/CEDPF, value-witness pairs for
        the single-objective problems (``value`` may be ``None`` when a
        threshold is unachievable).
    wall_time_seconds:
        Time spent inside the backend.  For cache hits this is the original
        computation's time, not the (near-zero) lookup time.
    cache_hit:
        Whether the session answered from its cache.
    node_count / bas_count:
        Size of the analyzed model.
    extras:
        Backend-specific metadata (e.g. per-point standard errors of the
        Monte-Carlo front).
    """

    request: AnalysisRequest
    backend: str
    shape: str
    setting: str
    front: Optional[ParetoFront] = None
    value: Optional[float] = None
    witness: Optional[FrozenSet[str]] = None
    wall_time_seconds: float = 0.0
    cache_hit: bool = False
    node_count: int = 0
    bas_count: int = 0
    extras: Dict[str, Any] = field(default_factory=dict)

    def as_cache_hit(self) -> "AnalysisResult":
        """A copy of this result marked as served from cache.

        ``extras`` is deep-copied so a caller mutating the returned dict
        (e.g. popping consumed standard errors) cannot corrupt the cached
        entry shared with future requests.
        """
        return replace(self, cache_hit=True, extras=copy.deepcopy(self.extras))

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible representation."""
        payload: Dict[str, Any] = {
            "request": self.request.to_dict(),
            "backend": self.backend,
            "shape": self.shape,
            "setting": self.setting,
            "wall_time_seconds": self.wall_time_seconds,
            "cache_hit": self.cache_hit,
            "node_count": self.node_count,
            "bas_count": self.bas_count,
        }
        if self.front is not None:
            payload["front"] = _front_to_list(self.front)
        if self.value is not None:
            payload["value"] = self.value
        if self.witness is not None:
            payload["witness"] = sorted(self.witness)
        if self.extras:
            payload["extras"] = self.extras
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnalysisResult":
        """Rebuild a result from :meth:`to_dict` output."""
        witness = data.get("witness")
        return cls(
            request=AnalysisRequest.from_dict(data["request"]),
            backend=data["backend"],
            shape=data["shape"],
            setting=data["setting"],
            front=None if data.get("front") is None else _front_from_list(data["front"]),
            value=data.get("value"),
            witness=None if witness is None else frozenset(witness),
            wall_time_seconds=data.get("wall_time_seconds", 0.0),
            cache_hit=data.get("cache_hit", False),
            node_count=data.get("node_count", 0),
            bas_count=data.get("bas_count", 0),
            extras=dict(data.get("extras", {})),
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "AnalysisResult":
        """Parse a result from a JSON string."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One line suitable for logs: backend, timing, answer size."""
        if self.front is not None:
            answer = f"front with {len(self.front)} points"
        elif self.value is not None:
            answer = f"value {self.value:g}"
        else:
            answer = "no feasible attack"
        hit = " (cached)" if self.cache_hit else ""
        return (
            f"{self.request.problem.value} via {self.backend} "
            f"[{self.setting}/{self.shape}] in {self.wall_time_seconds * 1e3:.2f} ms"
            f"{hit}: {answer}"
        )
