"""The pluggable analysis engine.

This package is the uniform query surface of the library: solver
implementations are *backends* registered in a capability-aware
:class:`~repro.engine.registry.BackendRegistry`, requests and results are
typed, JSON-round-trippable values, and :class:`AnalysisSession` adds
per-model caching and (optionally parallel) batch execution.

Layers
------
``backend``
    The :class:`SolverBackend` protocol and the ``(problem, shape,
    setting)`` capability cells (Table I of the paper, made data).
``backends``
    The six built-in backends: bottom-up, BILP and enumerative (exact,
    auto-selectable) plus genetic, prob-dag and Monte-Carlo (extensions,
    explicit opt-in).
``registry``
    Registration and data-driven resolution, replacing the old if/elif
    dispatch of ``repro.core.problems``.
``requests``
    :class:`AnalysisRequest` / :class:`AnalysisResult` with JSON round-trip.
``session``
    :class:`AnalysisSession`: fingerprint-keyed caching and batches.
``store``
    Shared persistent result stores (:class:`SqliteStore` /
    :class:`InMemoryStore`) that back session caches across processes.

The legacy entry points (``repro.solve``, ``CostDamageAnalyzer``) remain as
thin shims over this engine.
"""

from .backend import (
    BackendOutput,
    BaseBackend,
    Capability,
    Model,
    Setting,
    Shape,
    SolverBackend,
    model_shape,
    problem_setting,
)
from .registry import (
    BackendRegistry,
    BackendRegistryError,
    CapabilityError,
    UnknownBackendError,
    default_registry,
    shared_registry,
)
from .requests import AnalysisRequest, AnalysisResult
from .session import (
    EXECUTORS,
    AnalysisSession,
    SessionStats,
    model_fingerprint,
    run_request,
    run_serialized_request,
)
from .store import (
    STORE_SCHEMA_VERSION,
    InMemoryStore,
    NamespacedStore,
    ResultStore,
    SqliteStore,
    StoreError,
    StoreStats,
    open_store,
)

#: Concrete backend classes are re-exported lazily (PEP 562): importing the
#: engine package must not pull in the extension solver modules — they load
#: on first registry use (default_registry) or first attribute access.
_LAZY_BACKEND_EXPORTS = frozenset({
    "BilpBackend",
    "BottomUpBackend",
    "EnumerativeBackend",
    "GeneticBackend",
    "MonteCarloBackend",
    "ProbDagBackend",
    "standard_backends",
})


def __getattr__(name):
    if name in _LAZY_BACKEND_EXPORTS:
        from . import backends

        return getattr(backends, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AnalysisRequest",
    "AnalysisResult",
    "AnalysisSession",
    "BackendOutput",
    "BackendRegistry",
    "BackendRegistryError",
    "BaseBackend",
    "BilpBackend",
    "BottomUpBackend",
    "Capability",
    "CapabilityError",
    "EXECUTORS",
    "EnumerativeBackend",
    "GeneticBackend",
    "InMemoryStore",
    "NamespacedStore",
    "Model",
    "MonteCarloBackend",
    "ProbDagBackend",
    "ResultStore",
    "STORE_SCHEMA_VERSION",
    "SessionStats",
    "Setting",
    "Shape",
    "SolverBackend",
    "SqliteStore",
    "StoreError",
    "StoreStats",
    "UnknownBackendError",
    "default_registry",
    "model_fingerprint",
    "open_store",
    "model_shape",
    "problem_setting",
    "run_request",
    "run_serialized_request",
    "shared_registry",
    "standard_backends",
]
