"""Timing primitives shared by the benchmark harness and the experiments.

:class:`TimingSample` (mean/std over repeated runs) and :func:`measure`
used to live in :mod:`repro.experiments.timing`; they are now here so both
the paper-reproduction experiments and the workload benchmark harness go
through one measurement path.  ``repro.experiments.timing`` re-exports them
for backward compatibility.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

__all__ = ["TimingSample", "measure", "timed"]


@dataclass(frozen=True)
class TimingSample:
    """Mean and standard deviation of a repeated timing measurement."""

    mean_seconds: float
    std_seconds: float
    runs: int

    @classmethod
    def from_durations(cls, durations: List[float]) -> "TimingSample":
        """Aggregate raw per-run durations into a sample."""
        if not durations:
            raise ValueError("at least one duration is required")
        std = statistics.pstdev(durations) if len(durations) > 1 else 0.0
        return cls(mean_seconds=statistics.mean(durations), std_seconds=std,
                   runs=len(durations))


def timed(function: Callable[[], Any]) -> Tuple[Any, float]:
    """Call ``function`` once, returning ``(result, seconds)``."""
    start = time.perf_counter()
    result = function()
    return result, time.perf_counter() - start


def measure(function: Callable[[], object], repeats: int = 1) -> TimingSample:
    """Time a callable ``repeats`` times with ``perf_counter``."""
    durations = []
    for _ in range(repeats):
        durations.append(timed(function)[1])
    return TimingSample.from_durations(durations)
