"""The benchmark harness: expand scenario specs, execute, record.

The harness turns :class:`~repro.workloads.spec.ScenarioSpec` lists into
engine work — one :class:`~repro.engine.AnalysisRequest` per generated
workload case — executes them through :class:`~repro.engine.AnalysisSession`
on a sequential, thread-pool or **process-pool** executor, and records a
:class:`BenchRun` row per case (wall time, result size, cache counters,
resolved backend).

Every case is self-contained on the wire (model and request as JSON dicts),
so the process executor ships cases to workers without pickling any domain
object; the same serialized form is executed inline by the sequential and
thread executors, guaranteeing that executors differ only in *where* the
work runs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..attacktree import serialization
from ..core.problems import Problem
from ..engine import AnalysisRequest, AnalysisSession
from ..engine.session import EXECUTORS
from ..engine.store import ResultStore, open_store
from ..workloads import ScenarioSpec, WorkloadCase, expand
from .measure import TimingSample

__all__ = [
    "BenchRun",
    "build_request",
    "case_payload",
    "execute_serialized_case",
    "execute_specs",
    "expand_specs",
    "validate_case_requests",
]


@dataclass(frozen=True)
class BenchRun:
    """One benchmark row: a workload case timed through the engine.

    ``wall_time_seconds`` is the mean over ``repeats`` runs (the session
    cache is cleared between repeats so every run really computes);
    ``cache_hits``/``cache_misses`` are the session's counters after all
    repeats.  Hits stay zero unless a shared result store was attached —
    then a case answered by the store records ``cache_hits >= 1`` with the
    store portion in ``store_hits``, and its ``wall_time_seconds`` is the
    original computation's time.
    """

    case_id: str
    family: str
    shape: str
    setting: str
    size: int
    problem: str
    backend: str
    model_shape: str
    nodes: int
    bas: int
    repeats: int
    wall_time_seconds: float
    std_seconds: float
    result_points: int
    value: Optional[float]
    cache_hits: int
    cache_misses: int
    #: How many of the hits were served by a shared result store (zero
    #: unless the harness ran with a store path).
    store_hits: int = 0
    #: Peak traced memory over the case's repeats, in KiB — only measured
    #: when the harness ran with ``trace_memory=True`` (``None`` otherwise).
    peak_kb: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible representation (one artifact ``runs`` entry)."""
        payload: Dict[str, Any] = {
            "case_id": self.case_id,
            "family": self.family,
            "shape": self.shape,
            "setting": self.setting,
            "size": self.size,
            "problem": self.problem,
            "backend": self.backend,
            "model_shape": self.model_shape,
            "nodes": self.nodes,
            "bas": self.bas,
            "repeats": self.repeats,
            "wall_time_seconds": self.wall_time_seconds,
            "std_seconds": self.std_seconds,
            "result_points": self.result_points,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }
        if self.value is not None:
            payload["value"] = self.value
        if self.store_hits:
            payload["store_hits"] = self.store_hits
        if self.peak_kb is not None:
            payload["peak_kb"] = self.peak_kb
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRun":
        """Rebuild a run row from :meth:`to_dict` output."""
        return cls(
            case_id=data["case_id"],
            family=data["family"],
            shape=data["shape"],
            setting=data["setting"],
            # Only the fields validate_artifact requires may be read bare;
            # everything else defaults so externally produced artifacts that
            # pass validation also load.
            size=data.get("size", 0),
            problem=data["problem"],
            backend=data["backend"],
            model_shape=data.get("model_shape", ""),
            nodes=data.get("nodes", 0),
            bas=data.get("bas", 0),
            repeats=data.get("repeats", 1),
            wall_time_seconds=data["wall_time_seconds"],
            std_seconds=data.get("std_seconds", 0.0),
            result_points=data.get("result_points", 0),
            value=data.get("value"),
            cache_hits=data.get("cache_hits", 0),
            cache_misses=data.get("cache_misses", 0),
            store_hits=data.get("store_hits", 0),
            peak_kb=data.get("peak_kb"),
        )


def build_request(spec: ScenarioSpec) -> AnalysisRequest:
    """The engine request a spec benchmarks on each of its cases.

    The problem defaults to the setting's Pareto front (CDPF / CEDPF); the
    single-objective problems take their scalar parameter from the spec's
    ``budget`` / ``threshold`` params.
    """
    return AnalysisRequest(
        Problem(spec.default_problem()),
        budget=spec.param("budget"),
        threshold=spec.param("threshold"),
        backend=spec.backend,
    )


def expand_specs(
    specs: Sequence[ScenarioSpec],
) -> List[Tuple[ScenarioSpec, WorkloadCase]]:
    """Expand every spec, keeping the originating spec next to each case."""
    items: List[Tuple[ScenarioSpec, WorkloadCase]] = []
    for spec in specs:
        for case in expand(spec):
            items.append((spec, case))
    return items


def case_payload(
    spec: ScenarioSpec,
    case: WorkloadCase,
    repeats: int,
    trace_memory: bool = False,
) -> Dict[str, Any]:
    """Everything one worker needs, as plain JSON-compatible values.

    This is the wire format of one benchmark case: process-pool workers,
    and the distributed workers of :mod:`repro.distributed`, receive
    exactly this dict and return a :meth:`BenchRun.to_dict` row.
    """
    payload = {
        "identity": {
            "case_id": case.case_id,
            "family": case.family,
            "shape": case.shape,
            "setting": case.setting,
            "size": case.size,
        },
        "model": serialization.to_dict(case.model),
        "request": build_request(spec).to_dict(),
        "repeats": repeats,
    }
    if trace_memory:
        payload["trace_memory"] = True
    return payload


def validate_case_requests(
    items: Sequence[Tuple[ScenarioSpec, WorkloadCase]]
) -> None:
    """Validate every case's request and backend resolution up front.

    A bad backend name or missing budget in the last spec must fail before
    any work runs (or is submitted to a queue), not after minutes of
    benchmarking on the Nth worker.
    """
    for spec, case in items:
        request = build_request(spec)
        request.validate()
        session = AnalysisSession(case.model)
        session.resolve(request.problem, backend=request.backend)


# The shared result store of a process-pool worker: opened once per worker
# by the pool initializer (one connection per process, not one per case)
# and closed implicitly at worker exit.
_WORKER_STORE: Optional[ResultStore] = None


def _store_initializer(store_path: Optional[str]) -> None:
    global _WORKER_STORE
    _WORKER_STORE = open_store(store_path) if store_path else None


def execute_serialized_case(
    payload: Dict[str, Any], store: Optional[ResultStore] = None
) -> Dict[str, Any]:
    """Run one case (possibly in a worker process) and return its row.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it.  The sequential and thread executors pass the run's shared
    store instance explicitly; pool workers fall back to the per-process
    one their initializer opened.  With ``trace_memory`` set on the payload
    the case's peak traced allocation is recorded as ``peak_kb``
    (:mod:`tracemalloc`; measured around the solver run, so a store-served
    case reports only its deserialization footprint).
    """
    if store is None:
        store = _WORKER_STORE
    trace_memory = bool(payload.get("trace_memory"))
    peak_kb: Optional[float] = None
    owns_tracer = False
    if trace_memory:
        import tracemalloc

        # Respect a tracer someone else (e.g. pytest) already started: only
        # reset the peak, and only stop what we ourselves started.
        owns_tracer = not tracemalloc.is_tracing()
        if owns_tracer:
            tracemalloc.start()
        else:
            tracemalloc.reset_peak()
    durations: List[float] = []
    result = None
    try:
        # Deserialization runs inside the guard too: a malformed payload
        # must not leak a running tracer into a long-lived worker process
        # (which would silently slow every subsequent task it executes).
        model = serialization.from_dict(payload["model"])
        request = AnalysisRequest.from_dict(payload["request"])
        repeats = payload["repeats"]
        session = AnalysisSession(model, store=store)
        for repeat in range(repeats):
            if repeat:
                session.clear_cache()
            result = session.run(request)
            durations.append(result.wall_time_seconds)
    finally:
        if trace_memory:
            import tracemalloc

            peak_kb = round(tracemalloc.get_traced_memory()[1] / 1024.0, 3)
            if owns_tracer:
                tracemalloc.stop()
    assert result is not None
    sample = TimingSample.from_durations(durations)
    if result.front is not None:
        result_points = len(result.front)
    else:
        result_points = 1 if result.value is not None else 0
    identity = payload["identity"]
    return BenchRun(
        case_id=identity["case_id"],
        family=identity["family"],
        shape=identity["shape"],
        setting=identity["setting"],
        size=identity["size"],
        problem=result.request.problem.value,
        backend=result.backend,
        model_shape=result.shape,
        nodes=result.node_count,
        bas=result.bas_count,
        repeats=repeats,
        wall_time_seconds=sample.mean_seconds,
        std_seconds=sample.std_seconds,
        result_points=result_points,
        value=result.value,
        cache_hits=session.stats.hits,
        cache_misses=session.stats.misses,
        store_hits=session.stats.store_hits,
        peak_kb=peak_kb,
    ).to_dict()


def execute_specs(
    specs: Sequence[ScenarioSpec],
    executor: str = "sequential",
    max_workers: Optional[int] = None,
    repeats: int = 1,
    store_path: Optional[str] = None,
    trace_memory: bool = False,
) -> List[BenchRun]:
    """Expand and execute scenario specs, preserving expansion order.

    Parameters
    ----------
    specs:
        The workloads to benchmark.
    executor:
        ``"sequential"``, ``"thread"`` or ``"process"`` — how cases are
        distributed.  Results are identical across executors (only timings
        differ); the process pool gives true CPU parallelism for the
        solver hot path.
    max_workers:
        Pool size for the parallel executors (default: case count capped
        at 8).
    repeats:
        Timing repetitions per case (mean/std are recorded).
    store_path:
        Optional shared result store: a sqlite path
        (:class:`repro.engine.SqliteStore`) or an ``atcd serve`` broker
        URL (``http://host:port``).  Every case's session reads
        through and writes back to it, so repeated runs — and concurrent
        pool workers — share results instead of recomputing.  A case
        served from the store reports the *original* computation's wall
        time (so warm artifacts stay comparable against cold ones) and a
        nonzero ``cache_hits``/``store_hits``.  With ``repeats > 1`` only
        the in-memory cache is cleared between repeats; later repeats may
        be answered by the store, making repeats pointless for timing —
        prefer ``repeats=1`` when benchmarking against a store.
    trace_memory:
        Record each case's peak traced allocation (:mod:`tracemalloc`) as
        the optional ``peak_kb`` row field.  Tracing slows the interpreter,
        so wall times from a traced run are not comparable to untraced
        ones.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; expected one of {', '.join(EXECUTORS)}"
        )
    if not isinstance(repeats, int) or repeats < 1:
        raise ValueError(f"repeats must be a positive integer, got {repeats!r}")
    if max_workers is not None and (
        not isinstance(max_workers, int) or max_workers < 1
    ):
        raise ValueError(
            f"max_workers must be a positive integer, got {max_workers!r}"
        )
    # Open the store once, up front: a corrupt or stale-schema file must
    # fail before any work runs, not from inside the Nth pool worker.  The
    # same connection then serves every sequential/thread case; process
    # workers open their own via the pool initializer.
    store = open_store(store_path) if store_path is not None else None
    try:
        items = expand_specs(specs)
        payloads = [
            case_payload(spec, case, repeats, trace_memory=trace_memory)
            for spec, case in items
        ]
        validate_case_requests(items)
        if executor == "sequential" or len(payloads) <= 1:
            rows = [
                execute_serialized_case(payload, store=store)
                for payload in payloads
            ]
        elif executor == "thread":
            workers = max_workers or min(len(payloads), 8)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                rows = list(
                    pool.map(
                        lambda payload: execute_serialized_case(payload, store=store),
                        payloads,
                    )
                )
        else:
            workers = max_workers or min(len(payloads), 8)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_store_initializer,
                initargs=(store_path,),
            ) as pool:
                rows = list(pool.map(execute_serialized_case, payloads))
    finally:
        if store is not None:
            store.close()
    return [BenchRun.from_dict(row) for row in rows]
