"""Named benchmark profiles: curated scenario-spec bundles.

A profile is just a list of :class:`~repro.workloads.spec.ScenarioSpec`
values under a stable name, so ``atcd bench run --profile smoke`` means the
same workload on every machine and every PR:

``smoke``
    The CI gate: five families across both shapes and both settings, sized
    to finish in well under two minutes sequentially.
``full``
    The trajectory profile: the same coverage at paper-like sizes (random
    sweeps to 60 nodes, five cases per size) for real scaling curves.
``scale``
    Scaled-up stress variants only — deep chains, wide fans and shared-BAS
    pools pushed to the sizes where the hot paths dominate.
"""

from __future__ import annotations

from typing import Dict, List

from ..workloads import ScenarioSpec

__all__ = ["PROFILES", "profile", "profile_names", "describe_profiles"]


def _smoke() -> List[ScenarioSpec]:
    return [
        # The paper's case studies: every supported cell.
        ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
        ScenarioSpec(family="catalog", shape="treelike", setting="probabilistic"),
        ScenarioSpec(family="catalog", shape="dag", setting="deterministic"),
        # Random suites (Section X.D) in all four cells; the probabilistic
        # DAG cell runs the enumerative open-problem fallback, so it stays
        # small.
        ScenarioSpec(family="random", shape="treelike", setting="deterministic",
                     sizes=(10, 20, 30), cases_per_size=2),
        ScenarioSpec(family="random", shape="treelike", setting="probabilistic",
                     sizes=(10, 20), cases_per_size=2),
        ScenarioSpec(family="random", shape="dag", setting="deterministic",
                     sizes=(10, 20), cases_per_size=2),
        ScenarioSpec(family="random", shape="dag", setting="probabilistic",
                     sizes=(6,), cases_per_size=2),
        # Structural stress shapes.
        ScenarioSpec(family="deep-chain", shape="treelike", setting="deterministic",
                     sizes=(20,)),
        ScenarioSpec(family="deep-chain", shape="treelike", setting="probabilistic",
                     sizes=(15,)),
        ScenarioSpec(family="deep-chain", shape="dag", setting="deterministic",
                     sizes=(15,)),
        ScenarioSpec(family="deep-chain", shape="dag", setting="probabilistic",
                     sizes=(6,)),
        ScenarioSpec(family="wide-fan", shape="treelike", setting="deterministic",
                     sizes=(14,)),
        ScenarioSpec(family="wide-fan", shape="treelike", setting="probabilistic",
                     sizes=(10,)),
        ScenarioSpec(family="wide-fan", shape="dag", setting="deterministic",
                     sizes=(14,)),
        ScenarioSpec(family="shared-bas", shape="dag", setting="deterministic",
                     sizes=(12,)),
        ScenarioSpec(family="shared-bas", shape="dag", setting="probabilistic",
                     sizes=(8,)),
    ]


def _full() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(family="catalog", shape="treelike", setting="deterministic"),
        ScenarioSpec(family="catalog", shape="treelike", setting="probabilistic"),
        ScenarioSpec(family="catalog", shape="dag", setting="deterministic"),
        ScenarioSpec(family="random", shape="treelike", setting="deterministic",
                     sizes=(10, 20, 30, 40, 50, 60), cases_per_size=5),
        ScenarioSpec(family="random", shape="treelike", setting="probabilistic",
                     sizes=(10, 20, 30, 40, 50, 60), cases_per_size=5),
        ScenarioSpec(family="random", shape="dag", setting="deterministic",
                     sizes=(10, 20, 30, 40), cases_per_size=5),
        ScenarioSpec(family="random", shape="dag", setting="probabilistic",
                     sizes=(6, 8), cases_per_size=3),
        ScenarioSpec(family="deep-chain", shape="treelike", setting="deterministic",
                     sizes=(25, 50, 100), cases_per_size=2),
        ScenarioSpec(family="deep-chain", shape="treelike", setting="probabilistic",
                     sizes=(25, 50), cases_per_size=2),
        ScenarioSpec(family="deep-chain", shape="dag", setting="deterministic",
                     sizes=(25, 50), cases_per_size=2),
        ScenarioSpec(family="deep-chain", shape="dag", setting="probabilistic",
                     sizes=(7,), cases_per_size=2),
        ScenarioSpec(family="wide-fan", shape="treelike", setting="deterministic",
                     sizes=(10, 15, 20), cases_per_size=2),
        ScenarioSpec(family="wide-fan", shape="treelike", setting="probabilistic",
                     sizes=(10, 14), cases_per_size=2),
        ScenarioSpec(family="wide-fan", shape="dag", setting="deterministic",
                     sizes=(10, 15, 20), cases_per_size=2),
        ScenarioSpec(family="shared-bas", shape="dag", setting="deterministic",
                     sizes=(10, 16, 22), cases_per_size=2),
        ScenarioSpec(family="shared-bas", shape="dag", setting="probabilistic",
                     sizes=(8, 10), cases_per_size=2),
    ]


def _scale() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(family="deep-chain", shape="treelike", setting="deterministic",
                     sizes=(100, 200, 400)),
        ScenarioSpec(family="deep-chain", shape="treelike", setting="probabilistic",
                     sizes=(100, 200)),
        ScenarioSpec(family="wide-fan", shape="treelike", setting="deterministic",
                     sizes=(16, 20, 24)),
        ScenarioSpec(family="shared-bas", shape="dag", setting="deterministic",
                     sizes=(20, 30, 40)),
        ScenarioSpec(family="random", shape="treelike", setting="deterministic",
                     sizes=(50, 100, 150), cases_per_size=3),
        ScenarioSpec(family="random", shape="dag", setting="deterministic",
                     sizes=(40, 60), cases_per_size=3),
    ]


PROFILES: Dict[str, List[ScenarioSpec]] = {}


def _register_profiles() -> None:
    PROFILES["smoke"] = _smoke()
    PROFILES["full"] = _full()
    PROFILES["scale"] = _scale()


_register_profiles()


def profile(name: str) -> List[ScenarioSpec]:
    """Look up a profile's specs by name (a fresh list each call)."""
    try:
        return list(PROFILES[name])
    except KeyError:
        known = ", ".join(profile_names()) or "(none)"
        raise ValueError(
            f"unknown bench profile {name!r}; available profiles: {known}"
        ) from None


def profile_names() -> List[str]:
    """The registered profile names, sorted."""
    return sorted(PROFILES)


def describe_profiles() -> str:
    """Multi-line overview of profiles (for ``atcd bench list``)."""
    lines = []
    for name in profile_names():
        specs = PROFILES[name]
        families = sorted({spec.family for spec in specs})
        cases = sum(
            (len(spec.sizes) * spec.cases_per_size) if spec.family != "catalog" else 2
            for spec in specs
        )
        lines.append(
            f"{name:<8} {len(specs)} specs, ~{cases} cases, "
            f"families: {', '.join(families)}"
        )
    return "\n".join(lines)
