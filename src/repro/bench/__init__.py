"""The benchmark harness: timed, reproducible workload execution.

This package closes the loop the paper's evaluation opens (Table III
timings, Fig. 7 random suites): :mod:`repro.workloads` describes *what* to
run, the harness (:mod:`repro.bench.harness`) runs it through the analysis
engine — sequentially, on a thread pool, or on a **process pool** for true
CPU parallelism — and :mod:`repro.bench.artifact` persists the numbers as
versioned ``BENCH_*.json`` documents that
:func:`~repro.bench.artifact.compare_artifacts` can diff for regressions.

Typical use (the CLI's ``atcd bench`` wraps exactly this)::

    from repro.bench import execute_specs, build_artifact, profile, write_artifact

    specs = profile("smoke")
    runs = execute_specs(specs, executor="process")
    write_artifact(build_artifact("smoke", specs, runs), "BENCH_smoke.json")
"""

# The timing primitives are stdlib-only and imported eagerly — also
# resolving the name collision between the ``measure`` submodule and the
# ``measure`` function in the package namespace.
from .measure import TimingSample, measure, timed

#: Remaining public names re-exported lazily (PEP 562, the same pattern as
#: ``repro.engine``): importing ``repro.bench.measure`` — which the
#: experiments do for their timing primitives — must not drag in the
#: harness, artifact and profile stacks (and with them the whole workload
#: generator).  Submodules load on first attribute access.
_LAZY_EXPORTS = {
    # harness
    "BenchRun": "harness",
    "build_request": "harness",
    "execute_specs": "harness",
    "expand_specs": "harness",
    # artifact
    "SCHEMA": "artifact",
    "SCHEMA_VERSION": "artifact",
    "ComparisonReport": "artifact",
    "artifact_runs": "artifact",
    "baseline_artifact": "artifact",
    "build_artifact": "artifact",
    "compare_artifacts": "artifact",
    "environment_metadata": "artifact",
    "load_artifact": "artifact",
    "validate_artifact": "artifact",
    "write_artifact": "artifact",
    # profiles
    "PROFILES": "profiles",
    "describe_profiles": "profiles",
    "profile": "profiles",
    "profile_names": "profiles",
}

__all__ = sorted(set(_LAZY_EXPORTS) | {"TimingSample", "measure", "timed"})


def __getattr__(name):
    try:
        module_name = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
