"""Versioned BENCH JSON artifacts: write, validate, load, compare.

A benchmark artifact is one machine-readable JSON document capturing a
harness run: schema version, run name, creation time, environment metadata
(interpreter, platform, CPU count), the exact scenario specs that were
executed (so the workload regenerates bit-identically), the executor
configuration, and one row per timed case.  The schema is documented in
``benchmarks/DESIGN.md``.

:func:`compare_artifacts` is the regression gate: it matches rows across a
baseline and a candidate artifact by ``(case_id, problem, backend)``,
flags timing regressions beyond a relative threshold (ignoring
sub-resolution timings) and — more importantly — flags *result* changes
(front size / value), which are correctness failures, not slowdowns.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..workloads import ScenarioSpec
from .harness import BenchRun

__all__ = [
    "SCHEMA",
    "SCHEMA_VERSION",
    "environment_metadata",
    "build_artifact",
    "validate_artifact",
    "write_artifact",
    "load_artifact",
    "artifact_runs",
    "baseline_artifact",
    "ComparisonReport",
    "compare_artifacts",
]

SCHEMA = "atcd-bench"
SCHEMA_VERSION = 1

_REQUIRED_TOP_LEVEL = ("schema", "schema_version", "name", "environment", "specs",
                       "config", "runs")
_REQUIRED_RUN_FIELDS = ("case_id", "family", "shape", "setting", "problem",
                        "backend", "wall_time_seconds")


def environment_metadata() -> Dict[str, Any]:
    """Where the numbers were measured: interpreter, platform, CPU count."""
    import os

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "argv": list(sys.argv),
    }


def build_artifact(
    name: str,
    specs: Sequence[ScenarioSpec],
    runs: Sequence[BenchRun],
    config: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble a schema-valid artifact dict from a harness run."""
    artifact = {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "name": name,
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "environment": environment_metadata(),
        "specs": [spec.to_dict() for spec in specs],
        "config": dict(config or {}),
        "runs": [run.to_dict() for run in runs],
        "totals": {
            "cases": len(runs),
            "families": sorted({run.family for run in runs}),
            "shapes": sorted({run.shape for run in runs}),
            "settings": sorted({run.setting for run in runs}),
            "wall_time_seconds": sum(run.wall_time_seconds for run in runs),
            # Aggregate cache counters: with a shared result store attached,
            # hits / (hits + misses) is the run's store hit-rate.
            "cache_hits": sum(run.cache_hits for run in runs),
            "cache_misses": sum(run.cache_misses for run in runs),
            "store_hits": sum(run.store_hits for run in runs),
        },
    }
    # Memory profiling is opt-in (--trace-memory), so the totals only carry
    # peak columns when at least one row was traced.
    peaks = [run.peak_kb for run in runs if run.peak_kb is not None]
    if peaks:
        artifact["totals"]["peak_kb_max"] = max(peaks)
        artifact["totals"]["peak_kb_sum"] = round(sum(peaks), 3)
    validate_artifact(artifact)
    return artifact


def validate_artifact(data: Any) -> Dict[str, Any]:
    """Check an object is a structurally valid BENCH artifact.

    Raises ``ValueError`` with a one-line reason on the first violation and
    returns the (unmodified) artifact otherwise.
    """
    if not isinstance(data, dict):
        raise ValueError(f"artifact must be a JSON object, got {type(data).__name__}")
    for key in _REQUIRED_TOP_LEVEL:
        if key not in data:
            raise ValueError(f"artifact is missing the {key!r} field")
    if data["schema"] != SCHEMA:
        raise ValueError(
            f"artifact schema is {data['schema']!r}, expected {SCHEMA!r}"
        )
    if data["schema_version"] != SCHEMA_VERSION:
        raise ValueError(
            f"artifact schema_version is {data['schema_version']!r}, this build "
            f"reads version {SCHEMA_VERSION}"
        )
    if not isinstance(data["runs"], list):
        raise ValueError("artifact 'runs' must be a list")
    if not isinstance(data["specs"], list):
        raise ValueError("artifact 'specs' must be a list")
    for index, run in enumerate(data["runs"]):
        if not isinstance(run, dict):
            raise ValueError(f"runs[{index}] must be an object")
        for key in _REQUIRED_RUN_FIELDS:
            if key not in run:
                raise ValueError(f"runs[{index}] is missing the {key!r} field")
        if not isinstance(run["wall_time_seconds"], (int, float)):
            raise ValueError(f"runs[{index}].wall_time_seconds must be a number")
    # Specs must round-trip: an artifact whose workload cannot be
    # regenerated is not a reproducible benchmark record.
    for index, spec in enumerate(data["specs"]):
        try:
            ScenarioSpec.from_dict(spec)
        except (ValueError, TypeError) as error:
            raise ValueError(
                f"specs[{index}] is not a valid scenario: {error}"
            ) from error
    return data


def write_artifact(artifact: Mapping[str, Any], path: str) -> None:
    """Validate and write an artifact as indented JSON."""
    validate_artifact(dict(artifact))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_artifact(path: str) -> Dict[str, Any]:
    """Load and validate an artifact, raising ``ValueError`` on any failure."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise ValueError(f"cannot read artifact {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValueError(f"artifact {path!r} is not valid JSON: {error}") from error
    try:
        return validate_artifact(data)
    except ValueError as error:
        raise ValueError(f"artifact {path!r} is invalid: {error}") from error


def artifact_runs(artifact: Mapping[str, Any]) -> List[BenchRun]:
    """The artifact's rows as typed :class:`BenchRun` values."""
    return [BenchRun.from_dict(run) for run in artifact["runs"]]


def _run_key(run: BenchRun) -> Tuple[str, str, str]:
    return (run.case_id, run.problem, run.backend)


def baseline_artifact(
    artifacts: Sequence[Mapping[str, Any]]
) -> Dict[str, Any]:
    """Fold repeated runs of one profile into a rolling-baseline artifact.

    Takes N artifacts from independent runs of the *same* profile and
    produces one artifact whose per-case ``wall_time_seconds`` is the
    **median** across the runs — the number a CI regression gate should
    pin, since a single run's timing carries scheduler noise that a
    median mostly cancels.  ``std_seconds`` becomes the spread
    (max - min) across the runs, a visible record of how noisy the
    machine was when the baseline was cut.

    All inputs must share the same name and the same run keys
    (``case_id``/``problem``/``backend``); result fields are taken from
    the first artifact after checking the runs agree on them — a baseline
    averaging over runs that *disagree on answers* would bury a
    correctness bug in a timing file.
    """
    if not artifacts:
        raise ValueError("baseline needs at least one artifact")
    names = {artifact["name"] for artifact in artifacts}
    if len(names) != 1:
        raise ValueError(
            f"baseline inputs mix profiles {sorted(names)!r}; rerun one "
            "profile per baseline"
        )
    per_run = [
        {_run_key(run): run for run in artifact_runs(artifact)}
        for artifact in artifacts
    ]
    keys = set(per_run[0])
    for index, mapping in enumerate(per_run[1:], start=2):
        if set(mapping) != keys:
            raise ValueError(
                f"baseline input #{index} ran a different case set than #1; "
                "all runs must execute the identical profile"
            )
    folded: List[BenchRun] = []
    for key in per_run[0]:  # first artifact's order
        rows = [mapping[key] for mapping in per_run]
        first = rows[0]
        for row in rows[1:]:
            if row.result_points != first.result_points or (
                row.value is not None
                and first.value is not None
                and abs(row.value - first.value) > 1e-9
            ):
                raise ValueError(
                    f"baseline runs disagree on the result of "
                    f"{'/'.join(key)}: {first.result_points} points "
                    f"(value {first.value}) vs {row.result_points} points "
                    f"(value {row.value}) — fix the nondeterminism before "
                    "cutting a baseline"
                )
        times = sorted(row.wall_time_seconds for row in rows)
        middle = len(times) // 2
        median = (
            times[middle]
            if len(times) % 2
            else (times[middle - 1] + times[middle]) / 2.0
        )
        folded.append(dataclasses.replace(
            first,
            wall_time_seconds=median,
            std_seconds=round(times[-1] - times[0], 9),
        ))
    base = dict(artifacts[0])
    specs = [ScenarioSpec.from_dict(spec) for spec in base["specs"]]
    config = dict(base.get("config") or {})
    config["baseline_of_runs"] = len(artifacts)
    return build_artifact(base["name"], specs, folded, config=config)


@dataclass
class ComparisonReport:
    """The outcome of comparing a candidate artifact against a baseline.

    ``regressions`` are timing slowdowns beyond the threshold;
    ``mismatches`` are result differences (front size or value) — always
    failures regardless of timing; ``missing``/``added`` list run keys only
    present on one side (informational).
    """

    threshold: float
    min_seconds: float
    compared: int = 0
    regressions: List[Dict[str, Any]] = field(default_factory=list)
    improvements: List[Dict[str, Any]] = field(default_factory=list)
    mismatches: List[Dict[str, Any]] = field(default_factory=list)
    missing: List[Tuple[str, str, str]] = field(default_factory=list)
    added: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no regression and no result mismatch was found.

        A comparison where the baseline had runs but *none* matched the
        candidate is also a failure: a renamed profile or emptied candidate
        must not sail through the regression gate as a vacuous pass.
        """
        if self.compared == 0 and self.missing:
            return False
        return not self.regressions and not self.mismatches

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"compared {self.compared} runs "
            f"(threshold {self.threshold:+.0%}, floor {self.min_seconds*1e3:g} ms)"
        ]
        for entry in self.mismatches:
            lines.append(
                "RESULT MISMATCH {key}: baseline {baseline} != candidate "
                "{candidate}".format(**entry)
            )
        for entry in self.regressions:
            lines.append(
                "REGRESSION {key}: {baseline:.4f}s -> {candidate:.4f}s "
                "({ratio:+.0%})".format(**entry)
            )
        for entry in self.improvements:
            lines.append(
                "improvement {key}: {baseline:.4f}s -> {candidate:.4f}s "
                "({ratio:+.0%})".format(**entry)
            )
        if self.missing:
            lines.append(f"missing from candidate: {len(self.missing)} runs")
        if self.added:
            lines.append(f"new in candidate: {len(self.added)} runs")
        if self.compared == 0 and self.missing:
            lines.append("FAIL: no overlapping runs to compare")
        else:
            lines.append("PASS: no regressions" if self.ok else "FAIL")
        return "\n".join(lines)


def compare_artifacts(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    threshold: float = 0.25,
    min_seconds: float = 0.005,
) -> ComparisonReport:
    """Compare two artifacts run-by-run.

    Parameters
    ----------
    baseline / candidate:
        Validated artifact dicts (see :func:`load_artifact`).
    threshold:
        Relative slowdown that counts as a regression (0.25 = 25% slower).
    min_seconds:
        Runs where both sides are faster than this are never flagged —
        sub-resolution timings are noise, not signal.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold!r}")
    baseline_runs = {_run_key(run): run for run in artifact_runs(baseline)}
    candidate_runs = {_run_key(run): run for run in artifact_runs(candidate)}
    report = ComparisonReport(threshold=threshold, min_seconds=min_seconds)
    report.missing = sorted(set(baseline_runs) - set(candidate_runs))
    report.added = sorted(set(candidate_runs) - set(baseline_runs))
    for key in sorted(set(baseline_runs) & set(candidate_runs)):
        before, after = baseline_runs[key], candidate_runs[key]
        report.compared += 1
        label = "/".join(key)
        if before.result_points != after.result_points or (
            before.value is not None
            and after.value is not None
            and abs(before.value - after.value) > 1e-9
        ):
            report.mismatches.append({
                "key": label,
                "baseline": f"{before.result_points} points, value {before.value}",
                "candidate": f"{after.result_points} points, value {after.value}",
            })
            continue
        if before.wall_time_seconds < min_seconds and \
                after.wall_time_seconds < min_seconds:
            continue
        base = max(before.wall_time_seconds, 1e-12)
        ratio = (after.wall_time_seconds - before.wall_time_seconds) / base
        entry = {
            "key": label,
            "baseline": before.wall_time_seconds,
            "candidate": after.wall_time_seconds,
            "ratio": ratio,
        }
        if ratio > threshold:
            report.regressions.append(entry)
        elif ratio < -threshold:
            report.improvements.append(entry)
    return report
