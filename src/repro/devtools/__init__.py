"""Developer tooling that ships with the package.

:mod:`repro.devtools.staticcheck` is the project-invariant static
analyzer behind ``atcd check`` — the machine-checked form of the
invariants ``benchmarks/DESIGN.md`` states in prose (deterministic
kernels, closed metric catalogs, transaction discipline, lock hygiene,
the CLI exit-code contract).  It lives inside the installed package, not
in a scripts directory, so CI, pre-commit hooks and downstream forks all
run the exact rule set the code was written against.
"""

from . import staticcheck

__all__ = ["staticcheck"]
