"""The committed-baseline workflow for grandfathered findings.

A new rule landing on an old codebase usually finds violations that are
real but not this PR's to fix.  Rather than weakening the rule or
blocking the merge, those findings are *grandfathered*: written into a
committed JSON baseline that ``atcd check --baseline`` subtracts from
every run.  The gate then holds the line — no **new** finding may land —
while the baseline only ever shrinks (fixing a grandfathered site makes
its entry stale, and stale entries are reported so they get removed).

Entries are keyed by :meth:`Finding.fingerprint` — ``(rule, path,
message)``, no line numbers — so unrelated edits above a grandfathered
site do not resurrect it.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence, Tuple

from .engine import Finding, StaticCheckError

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

BASELINE_VERSION = 1

#: Where ``atcd check`` looks when ``--baseline`` is not given: the
#: committed baseline at the repo root (used only if it exists).
DEFAULT_BASELINE_NAME = "staticcheck-baseline.json"

Fingerprint = Tuple[str, str, str]


def load_baseline(path: str) -> List[Fingerprint]:
    """Parse a baseline file into fingerprints; bad documents raise."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as error:
        raise StaticCheckError(f"cannot read baseline {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise StaticCheckError(
            f"baseline {path!r} is not valid JSON: {error}"
        ) from error
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise StaticCheckError(
            f"baseline {path!r} is not a version-{BASELINE_VERSION} "
            "staticcheck baseline"
        )
    fingerprints: List[Fingerprint] = []
    for entry in document["findings"]:
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(key), str) for key in ("rule", "path", "message")
        ):
            raise StaticCheckError(
                f"baseline {path!r} has a malformed entry: {entry!r}"
            )
        fingerprints.append((entry["rule"], entry["path"], entry["message"]))
    return fingerprints


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, line-free)."""
    entries = sorted(
        {finding.fingerprint() for finding in findings}
    )
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {"rule": rule, "path": file_path, "message": message}
            for rule, file_path, message in entries
        ],
    }
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[Fingerprint]
) -> Tuple[List[Finding], int, List[Fingerprint]]:
    """Split findings into (new, grandfathered-count, stale entries).

    A baseline entry may match several findings (two calls on one line
    produce one fingerprint); every match is grandfathered.  Entries that
    matched nothing are *stale* — the violation was fixed — and are
    returned so the caller can tell the user to shrink the baseline.
    """
    allowed: Dict[Fingerprint, int] = {}
    for fingerprint in baseline:
        allowed[fingerprint] = 0
    new: List[Finding] = []
    grandfathered = 0
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in allowed:
            allowed[fingerprint] += 1
            grandfathered += 1
        else:
            new.append(finding)
    stale = [fp for fp, hits in allowed.items() if hits == 0]
    return new, grandfathered, stale
