"""The rule registry: one module per machine-checked invariant.

Adding a rule is: write a :class:`~repro.devtools.staticcheck.engine.Rule`
subclass in a new module here, append it to :data:`ALL_RULES`, give it a
fixture pair in ``tests/devtools/``, and document the invariant it
mechanizes in ``benchmarks/DESIGN.md``.  The CLI and CI pick it up from
the registry automatically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from ..engine import Rule, StaticCheckError
from .broad_except import BroadExceptRule
from .cli_exits import CliExitRule
from .determinism import DeterminismRule
from .locks import LockRule
from .metrics_catalog import MetricsCatalogRule
from .transactions import TransactionRule

__all__ = [
    "ALL_RULES",
    "default_rules",
    "rule_ids",
    "select_rules",
    "BroadExceptRule",
    "CliExitRule",
    "DeterminismRule",
    "LockRule",
    "MetricsCatalogRule",
    "TransactionRule",
]

ALL_RULES: Sequence[Type[Rule]] = (
    DeterminismRule,
    MetricsCatalogRule,
    TransactionRule,
    LockRule,
    CliExitRule,
    BroadExceptRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in registry order."""
    return [rule_class() for rule_class in ALL_RULES]


def rule_ids() -> Dict[str, Type[Rule]]:
    return {rule_class.rule_id: rule_class for rule_class in ALL_RULES}


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """Instantiate the rules named by ``ids`` (all of them when empty).

    Unknown ids raise :class:`StaticCheckError`, which the CLI reports as
    a one-line exit-2 user error.
    """
    if not ids:
        return default_rules()
    registry = rule_ids()
    selected: List[Rule] = []
    for rule_id in ids:
        normalized = rule_id.strip().upper()
        if normalized not in registry:
            raise StaticCheckError(
                f"unknown rule {rule_id!r}; known rules: "
                + ", ".join(sorted(registry))
            )
        selected.append(registry[normalized]())
    return selected
