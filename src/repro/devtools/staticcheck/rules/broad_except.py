"""EXC001 — broad exception handlers carry an explicit justification.

``except Exception:`` swallows ``KeyError`` typos and wire-protocol bugs
with equal enthusiasm.  Some sites genuinely need it — a worker running
arbitrary backend code, a telemetry exporter that must never take down
the operation it observes, an HTTP handler that must answer rather than
hang — but those are *decisions*, and this rule makes each one visible:

* a handler for ``Exception`` / ``BaseException`` / bare ``except:``
  must carry ``# staticcheck: allow-broad-except(<reason>)`` on the
  ``except`` line or the line above;
* handlers whose body re-raises (a top-level bare ``raise``) are allowed
  without a marker — catch-cleanup-reraise narrows nothing, since the
  exception keeps propagating.

The marker's reason is mandatory.  A broad handler that cannot say why
it is broad should be narrowed to the exceptions it actually handles.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Finding, Project, Rule, SourceModule

__all__ = ["BroadExceptRule", "ALLOW_MARKER"]

ALLOW_MARKER = re.compile(
    r"#\s*staticcheck:\s*allow-broad-except\s*\((?P<reason>[^)]+)\)"
)

_BROAD_NAMES = {"Exception", "BaseException"}


def _broad_name(node: ast.ExceptHandler) -> str:
    """The broad exception this handler catches, or ``""``."""
    if node.type is None:
        return "bare except:"
    names = []
    if isinstance(node.type, ast.Tuple):
        names = [e.id for e in node.type.elts if isinstance(e, ast.Name)]
    elif isinstance(node.type, ast.Name):
        names = [node.type.id]
    for name in names:
        if name in _BROAD_NAMES:
            return f"except {name}"
    return ""


def _reraises(node: ast.ExceptHandler) -> bool:
    """True when the handler's top-level body contains a bare ``raise``."""
    for statement in node.body:
        if isinstance(statement, ast.Raise) and statement.exc is None:
            return True
        # cleanup-then-reraise wrapped in try/finally still counts
        if isinstance(statement, ast.Try):
            for sub in statement.body + statement.finalbody:
                if isinstance(sub, ast.Raise) and sub.exc is None:
                    return True
    return False


def _has_marker(module: SourceModule, node: ast.ExceptHandler) -> bool:
    for line in (node.lineno, node.lineno - 1):
        comment = module.comments.get(line, "")
        if ALLOW_MARKER.search(comment):
            return True
    return False


class BroadExceptRule(Rule):
    rule_id = "EXC001"
    title = "broad except handlers are justified or narrowed"
    rationale = (
        "a broad handler is a decision, not a default: it must either "
        "re-raise or say why it swallows everything"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                caught = _broad_name(node)
                if not caught:
                    continue
                if _reraises(node) or _has_marker(module, node):
                    continue
                yield module.finding(
                    node,
                    self.rule_id,
                    f"{caught} without `# staticcheck: "
                    "allow-broad-except(reason)`: narrow it to the "
                    "exceptions this site actually handles, or justify it",
                )
