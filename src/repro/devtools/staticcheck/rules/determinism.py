"""DET001 — kernel modules must be deterministic.

CI gates merges on sequential ≡ distributed ≡ shared-nothing
byte-identical solver results; that equality only holds if nothing in
the compute kernels reads a wall clock, an unseeded RNG or any other
per-process entropy source.  This rule bans those calls statically in
the kernel subtree, so a nondeterminism bug is caught at review time
instead of as a flaky cross-host mismatch three layers up.

``time.perf_counter``/``process_time`` stay legal: relative timing never
enters a result payload, and the bench harness measures kernels with
them.  ``random.Random(seed)`` with an explicit seed is the sanctioned
way to use randomness (the genetic and Monte-Carlo extensions do);
``random.Random()`` with no arguments seeds from the OS and is banned.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..engine import Finding, Project, Rule, iter_calls

__all__ = ["DeterminismRule", "KERNEL_PATHS"]

#: The kernel subtree: everything whose output feeds byte-identical CI
#: equality.  ``engine/backends.py`` is the dispatch layer that wraps the
#: kernels, so it is held to the same bar.
KERNEL_PATHS = (
    "repro/core/",
    "repro/pareto/",
    "repro/milp/",
    "repro/extensions/",
    "repro/engine/backends.py",
)

#: Calls that read wall-clock time or per-process entropy.  Matched on
#: the import-resolved dotted name, so ``from time import time`` and
#: ``import time as t`` are both caught.
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.localtime": "wall-clock read",
    "time.gmtime": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "host/time-derived id",
    "uuid.uuid4": "os-entropy id",
    "os.urandom": "os entropy",
    "os.getrandom": "os entropy",
}

#: Module-level functions of :mod:`random` share one process-global,
#: OS-seeded generator; any of them makes results run-dependent.
UNSEEDED_RANDOM_PREFIX = "random."

#: Everything under :mod:`secrets` is os-entropy by design.
SECRETS_PREFIX = "secrets."


class DeterminismRule(Rule):
    rule_id = "DET001"
    title = "no wall clock or unseeded randomness in kernel modules"
    rationale = (
        "byte-identical CI equality (sequential == distributed == "
        "shared-nothing) requires kernels to be pure functions of their "
        "inputs"
    )

    def __init__(self, kernel_paths: Sequence[str] = KERNEL_PATHS) -> None:
        self.kernel_paths = tuple(kernel_paths)

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules_matching(*self.kernel_paths):
            for call in iter_calls(module):
                resolved = module.resolve_name(call.func)
                if resolved is None:
                    continue
                yield from self._check_call(module, call, resolved)

    def _check_call(self, module, call: ast.Call, resolved: str) -> Iterator[Finding]:
        if resolved in BANNED_CALLS:
            yield module.finding(
                call,
                self.rule_id,
                f"{resolved} ({BANNED_CALLS[resolved]}) in kernel module "
                f"{module.package_path}: kernels must be deterministic",
            )
            return
        if resolved.startswith(SECRETS_PREFIX):
            yield module.finding(
                call,
                self.rule_id,
                f"{resolved} (os entropy) in kernel module "
                f"{module.package_path}: kernels must be deterministic",
            )
            return
        if resolved == "random.Random":
            if not call.args and not call.keywords:
                yield module.finding(
                    call,
                    self.rule_id,
                    "random.Random() without a seed in kernel module "
                    f"{module.package_path}: pass an explicit seed",
                )
            return
        if resolved == "random.SystemRandom":
            yield module.finding(
                call,
                self.rule_id,
                "random.SystemRandom (os entropy) in kernel module "
                f"{module.package_path}: kernels must be deterministic",
            )
            return
        if resolved.startswith(UNSEEDED_RANDOM_PREFIX):
            # Module-level random.* functions drive the shared OS-seeded
            # generator.  (random.Random/SystemRandom were handled above.)
            yield module.finding(
                call,
                self.rule_id,
                f"{resolved} uses the process-global unseeded RNG in kernel "
                f"module {module.package_path}: use random.Random(seed)",
            )
