"""LCK001 — module state mutated under its lock; no lock-order cycles.

Ten-plus modules in this repo pair mutable state with a
``threading.Lock``.  Two structural hazards recur in review:

* **unguarded mutation** — a module-level global that exists *because*
  several threads touch it (``_exporters``, ``_default_registry``,
  ``_gag_depth``) gets a new mutation site outside ``with <lock>:``;
* **lock-order inversion** — two locks acquired in opposite orders on
  two paths, the classic ABBA deadlock.

Both are invisible to unit tests (races don't reproduce on demand), so
this rule checks them lexically:

1. In every module that defines a module-level ``threading.Lock()`` /
   ``RLock()``, each write to a module-level global (declared mutable by
   assignment at module scope, or re-bound through ``global``) and each
   mutating method call on one (``append``/``add``/``update``/…) must
   sit inside a ``with <some module lock>:`` block.
2. Across the whole project, every lexically nested ``with lockA: …
   with lockB:`` pair adds an edge A→B to the lock-nesting graph; locks
   are canonicalized as ``module.global_name`` or
   ``module.Class.attr`` (instance locks created in ``__init__``).  Any
   cycle — including a self-loop, which is a guaranteed deadlock on a
   non-reentrant lock — is a finding.

Lexical analysis cannot see locks held across function calls; the rule
is a tripwire for the nesting the code actually writes, not a full
happens-before prover (that is what the ROADMAP's sanitizer wiring is
for).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..engine import Finding, Project, Rule, SourceModule

__all__ = ["LockRule"]

#: Method names that mutate the common mutable containers.
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add",
    "discard", "update", "setdefault", "popitem", "appendleft",
}

_LOCK_FACTORIES = {"threading.Lock", "threading.RLock"}


def _is_lock_factory(module: SourceModule, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    resolved = module.resolve_name(node.func)
    return resolved in _LOCK_FACTORIES


def _module_stem(module: SourceModule) -> str:
    stem = module.package_path.rsplit("/", 1)[-1]
    return stem[:-3] if stem.endswith(".py") else stem


class _ModuleLocks:
    """What one module contributes: its locks and guarded globals."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.stem = _module_stem(module)
        self.global_locks: Set[str] = set()
        self.instance_locks: Dict[Tuple[str, str], str] = {}
        self.mutable_globals: Set[str] = set()
        self._scan()

    def _scan(self) -> None:
        for statement in self.module.tree.body:
            if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                target = statement.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if _is_lock_factory(self.module, statement.value):
                    self.global_locks.add(target.id)
                elif isinstance(
                    statement.value, (ast.List, ast.Dict, ast.Set)
                ) or self._is_scalar(statement.value):
                    self.mutable_globals.add(target.id)
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                if statement.value is not None and _is_lock_factory(
                    self.module, statement.value
                ):
                    self.global_locks.add(statement.target.id)
                elif statement.value is not None and (
                    isinstance(statement.value, (ast.List, ast.Dict, ast.Set))
                    or self._is_scalar(statement.value)
                ):
                    self.mutable_globals.add(statement.target.id)
        # Instance locks: ``self.<attr> = threading.Lock()`` anywhere in a
        # class body (usually __init__).
        for node in ast.walk(self.module.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and _is_lock_factory(self.module, node.value)
            ):
                enclosing = self.module.enclosing_class(node)
                if enclosing is not None:
                    attr = node.targets[0].attr
                    self.instance_locks[(enclosing.name, attr)] = (
                        f"{self.stem}.{enclosing.name}.{attr}"
                    )

    @staticmethod
    def _is_scalar(node: ast.AST) -> bool:
        """Module globals initialized to a rebindable scalar (None, 0)
        count as guarded state too — refcounts and cached singletons."""
        return isinstance(node, ast.Constant) and (
            node.value is None or isinstance(node.value, (int, float))
        )

    # -------------------------------------------------------------- #
    def canonical_lock(self, node: ast.AST) -> Optional[str]:
        """The project-wide identity of a ``with <expr>:`` lock, if any."""
        if isinstance(node, ast.Name) and node.id in self.global_locks:
            return f"{self.stem}.{node.id}"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            enclosing = self.module.enclosing_class(node)
            if enclosing is not None:
                return self.instance_locks.get((enclosing.name, node.attr))
        return None


class LockRule(Rule):
    rule_id = "LCK001"
    title = "lock-guarded module state and acyclic lock nesting"
    rationale = (
        "unguarded writes to shared module state and ABBA lock orders are "
        "the race/deadlock classes unit tests cannot reproduce on demand"
    )

    def __init__(self, mutating_methods: Sequence[str] = ()) -> None:
        self.mutating_methods = set(mutating_methods) or set(_MUTATING_METHODS)

    def check(self, project: Project) -> Iterator[Finding]:
        per_module = [_ModuleLocks(module) for module in project.modules]
        edges: Dict[str, Set[str]] = {}
        edge_sites: Dict[Tuple[str, str], Tuple[SourceModule, ast.AST]] = {}
        for info in per_module:
            if info.global_locks and info.mutable_globals:
                yield from self._check_guarded_globals(info)
            self._collect_nesting(info, edges, edge_sites)
        yield from self._report_cycles(edges, edge_sites)

    # -- part 1: unguarded global mutation ------------------------- #
    def _check_guarded_globals(self, info: _ModuleLocks) -> Iterator[Finding]:
        module = info.module
        for node in ast.walk(module.tree):
            name, verb = self._global_mutation(info, node)
            if name is None:
                continue
            if module.enclosing_function(node) is None:
                continue  # module-scope initialization is single-threaded
            if self._under_module_lock(info, node):
                continue
            yield module.finding(
                node,
                self.rule_id,
                f"module global {name!r} {verb} outside `with <lock>:` in a "
                f"module that guards its state with "
                f"{sorted(info.global_locks)}",
            )

    def _global_mutation(
        self, info: _ModuleLocks, node: ast.AST
    ) -> Tuple[Optional[str], str]:
        targets: List[ast.AST] = []
        verb = "assigned"
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign,)):
            targets = [node.target]
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.mutating_methods
                and isinstance(func.value, ast.Name)
                and func.value.id in info.mutable_globals
            ):
                return func.value.id, f"mutated via .{func.attr}()"
            return None, verb
        else:
            return None, verb
        for target in targets:
            if isinstance(target, ast.Name) and target.id in info.mutable_globals:
                if self._declares_global(info, node, target.id):
                    return target.id, verb
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in info.mutable_globals
            ):
                return target.value.id, "item-assigned"
        return None, verb

    def _declares_global(
        self, info: _ModuleLocks, node: ast.AST, name: str
    ) -> bool:
        """Only rebinding the *module* global counts — a local shadowing
        the name is someone else's business."""
        function = info.module.enclosing_function(node)
        if function is None:
            return False
        for statement in ast.walk(function):
            if isinstance(statement, ast.Global) and name in statement.names:
                return True
        return False

    def _under_module_lock(self, info: _ModuleLocks, node: ast.AST) -> bool:
        for ancestor in info.module.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if (
                        isinstance(item.context_expr, ast.Name)
                        and item.context_expr.id in info.global_locks
                    ):
                        return True
        return False

    # -- part 2: lock-order cycles ---------------------------------- #
    def _collect_nesting(
        self,
        info: _ModuleLocks,
        edges: Dict[str, Set[str]],
        edge_sites: Dict[Tuple[str, str], Tuple[SourceModule, ast.AST]],
    ) -> None:
        module = info.module
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            inner_locks = [
                lock
                for item in node.items
                if (lock := info.canonical_lock(item.context_expr)) is not None
            ]
            if not inner_locks:
                continue
            held = self._locks_held_above(info, node)
            # Multiple locks in one `with a, b:` statement nest left to
            # right by language semantics.
            ordered = held + inner_locks
            for index, outer in enumerate(ordered):
                for inner in ordered[index + 1:]:
                    edges.setdefault(outer, set()).add(inner)
                    edge_sites.setdefault((outer, inner), (module, node))

    def _locks_held_above(
        self, info: _ModuleLocks, node: ast.AST
    ) -> List[str]:
        held: List[str] = []
        for ancestor in info.module.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    lock = info.canonical_lock(item.context_expr)
                    if lock is not None:
                        held.append(lock)
        return held

    def _report_cycles(
        self,
        edges: Dict[str, Set[str]],
        edge_sites: Dict[Tuple[str, str], Tuple[SourceModule, ast.AST]],
    ) -> Iterator[Finding]:
        reported: Set[Tuple[str, ...]] = set()
        for start in sorted(edges):
            cycle = self._find_cycle(start, edges)
            if cycle is None:
                continue
            canonical = self._canonical_cycle(cycle)
            if canonical in reported:
                continue
            reported.add(canonical)
            module, node = edge_sites[(cycle[0], cycle[1])]
            yield module.finding(
                node,
                self.rule_id,
                "lock-order cycle (deadlock hazard): "
                + " -> ".join(cycle)
                + "; acquire these locks in one global order",
            )

    @staticmethod
    def _find_cycle(
        start: str, edges: Dict[str, Set[str]]
    ) -> Optional[List[str]]:
        path: List[str] = []
        on_path: Set[str] = set()
        visited: Set[str] = set()

        def visit(lock: str) -> Optional[List[str]]:
            if lock in on_path:
                index = path.index(lock)
                return path[index:] + [lock]
            if lock in visited:
                return None
            visited.add(lock)
            path.append(lock)
            on_path.add(lock)
            for nxt in sorted(edges.get(lock, ())):
                found = visit(nxt)
                if found is not None:
                    return found
            path.pop()
            on_path.discard(lock)
            return None

        return visit(start)

    @staticmethod
    def _canonical_cycle(cycle: List[str]) -> Tuple[str, ...]:
        # cycle is [a, ..., a]; rotate the open form to its minimal
        # element so every traversal of one cycle reports once.
        open_form = cycle[:-1]
        pivot = min(range(len(open_form)), key=lambda i: open_form[i])
        rotated = open_form[pivot:] + open_form[:pivot]
        return tuple(rotated)
