"""CLI001 — user-error paths in the CLI exit 2.

Since PR 2 every subcommand reports user errors (bad paths, malformed
requests, unknown backends, unusable queues) as one ``atcd: ...`` line
with **exit code 2**; scripts and the CI jobs distinguish that from
exit 1, which means "the command ran and the answer is negative" (a
bench regression, a dead-lettered task, an unreached threshold).

``raise SystemExit("message")`` silently exits **1** — Python prints the
string and uses code 1 — so a SystemExit carrying a string, carrying
nothing, or carrying a literal 1 in the CLI module is a contract
violation waiting for a script to misread it.  Same for ``sys.exit``
with those arguments.  The sanctioned patterns are:

* ``return 2`` (or ``raise SystemExit(2)``) after printing one line, or
* raising ``ValueError``/``TypeError`` so ``main()``'s user-error net
  formats it and returns 2.

``sys.exit(main())`` and other non-literal arguments are out of scope —
the code is computed, and the computation is what the contract tests
pin.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from ..engine import Finding, Project, Rule, iter_calls

__all__ = ["CliExitRule", "CLI_MODULES"]

CLI_MODULES = ("repro/cli.py",)


def _literal_exit_argument(node: ast.AST) -> Optional[object]:
    if isinstance(node, ast.Constant):
        return node.value
    return None


class CliExitRule(Rule):
    rule_id = "CLI001"
    title = "CLI user errors exit 2, not 1"
    rationale = (
        "the exit-code contract: 2 = user error (one-line message), "
        "1 = negative domain answer, 0 = success; SystemExit(str) is a "
        "hidden exit 1"
    )

    def __init__(self, cli_modules: Sequence[str] = CLI_MODULES) -> None:
        self.cli_modules = tuple(cli_modules)

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules_matching(*self.cli_modules):
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Raise):
                    yield from self._check_raise(module, node)
            for call in iter_calls(module):
                yield from self._check_sys_exit(module, call)

    def _check_raise(self, module, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise
        if isinstance(exc, ast.Name) and exc.id == "SystemExit":
            yield module.finding(
                node,
                self.rule_id,
                "naked `raise SystemExit` exits 0 — an error path that "
                "reports success; user errors must exit 2 (raise ValueError "
                "into main()'s net, or SystemExit(2))",
            )
            return
        if (
            isinstance(exc, ast.Call)
            and isinstance(exc.func, ast.Name)
            and exc.func.id == "SystemExit"
        ):
            yield from self._check_exit_args(module, node, exc, "raise SystemExit")

    def _check_sys_exit(self, module, call: ast.Call) -> Iterator[Finding]:
        resolved = module.resolve_name(call.func)
        if resolved != "sys.exit":
            return
        yield from self._check_exit_args(module, call, call, "sys.exit")

    def _check_exit_args(
        self, module, node: ast.AST, call: ast.Call, what: str
    ) -> Iterator[Finding]:
        if not call.args:
            yield module.finding(
                node,
                self.rule_id,
                f"`{what}()` without a code exits 0 on raise-paths meant as "
                "errors; user errors must exit 2 explicitly",
            )
            return
        value = _literal_exit_argument(call.args[0])
        if isinstance(call.args[0], ast.JoinedStr):
            value = ""  # an f-string message is still a string exit
        if isinstance(value, str):
            yield module.finding(
                node,
                self.rule_id,
                f"`{what}(<message>)` prints the string and exits 1; user "
                "errors must exit 2 (raise ValueError into main()'s net)",
            )
        elif value == 1 and not isinstance(value, bool):
            yield module.finding(
                node,
                self.rule_id,
                f"`{what}(1)` in the CLI: exit 1 is reserved for negative "
                "domain answers; user/argument errors must exit 2",
            )
