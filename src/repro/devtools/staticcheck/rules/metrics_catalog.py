"""MET001 — every metric name and label key comes from the closed catalog.

``/metrics`` cardinality stays bounded because label values are drawn
from small closed sets and label *keys* and family names come from one
place: :mod:`repro.obs.families`.  The runtime half of that defence is
the route-template collapse in ``obs/scrape.py``; this rule is the
static half.  It parses the catalog module's AST (names, types, label
tuples), then checks every other module:

* registering a family whose name starts with ``atcd_`` outside the
  catalog module is a finding — new families are *declared* in the
  catalog, then used;
* calling ``.inc()`` / ``.observe()`` / ``.set()`` on a family fetched
  through a catalog accessor must pass exactly the declared label keys —
  a typo'd or invented label key is caught here instead of as a runtime
  ``ValueError`` on a hot path (or worse, silent unbounded cardinality
  if the registry ever got laxer).

Receivers are recognized two ways: direct chains
(``obs_families.queue_ops_total().inc(op="claim")``) and single-assign
locals (``gauge = families.queue_tasks(registry)`` … ``gauge.set(v,
state=s)``), which covers every call shape the codebase uses.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..engine import Finding, Project, Rule, SourceModule, iter_calls, literal_str

__all__ = ["MetricsCatalogRule", "CATALOG_PATH"]

#: Where the closed catalog lives.
CATALOG_PATH = "repro/obs/families.py"

#: The registry's family-registration method names.
_REGISTRATION_METHODS = ("counter", "gauge", "histogram")

#: Sample-update methods whose keyword arguments are label keys.
_UPDATE_METHODS = ("inc", "observe", "set")


class CatalogFamily:
    def __init__(self, name: str, kind: str, labelnames: Tuple[str, ...]):
        self.name = name
        self.kind = kind
        self.labelnames = labelnames


def _parse_catalog(module: SourceModule) -> Tuple[Dict[str, CatalogFamily], Dict[str, str]]:
    """(family name -> declaration, accessor function name -> family name).

    The catalog module's shape is one accessor function per family, each
    returning ``registry.counter("atcd_...", ..., labelnames=(...))`` —
    this reads those calls straight out of the AST, so the rule needs no
    import machinery and works on fixture catalogs in tests.
    """
    families: Dict[str, CatalogFamily] = {}
    accessors: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            kind = _registration_kind(call)
            if kind is None or not call.args:
                continue
            name = literal_str(call.args[0])
            if name is None or not name.startswith("atcd_"):
                continue
            labelnames = _labelnames_literal(call)
            families[name] = CatalogFamily(name, kind, labelnames or ())
            accessors[node.name] = name
    return families, accessors


def _registration_kind(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute) and call.func.attr in _REGISTRATION_METHODS:
        return call.func.attr
    return None


def _labelnames_literal(call: ast.Call) -> Optional[Tuple[str, ...]]:
    for keyword in call.keywords:
        if keyword.arg == "labelnames" and isinstance(
            keyword.value, (ast.Tuple, ast.List)
        ):
            names = []
            for element in keyword.value.elts:
                value = literal_str(element)
                if value is None:
                    return None
                names.append(value)
            return tuple(names)
    return None


class MetricsCatalogRule(Rule):
    rule_id = "MET001"
    title = "atcd_* metric names and label keys must come from the catalog"
    rationale = (
        "static cardinality safety: obs/families.py is the single closed "
        "set of families and label keys the /metrics exposition can emit"
    )

    def __init__(self, catalog_path: str = CATALOG_PATH) -> None:
        self.catalog_path = catalog_path

    def check(self, project: Project) -> Iterator[Finding]:
        catalog_module = None
        for module in project.modules:
            if module.package_path == self.catalog_path:
                catalog_module = module
                break
        if catalog_module is None:
            # Nothing uses metrics in this file set (e.g. `atcd check
            # some/dir`); without a catalog there is nothing to enforce.
            return
        families, accessors = _parse_catalog(catalog_module)
        for module in project.modules:
            if module is catalog_module:
                continue
            yield from self._check_module(module, families, accessors)

    # -------------------------------------------------------------- #
    def _check_module(
        self,
        module: SourceModule,
        families: Dict[str, CatalogFamily],
        accessors: Dict[str, str],
    ) -> Iterator[Finding]:
        local_families = self._local_accessor_vars(module, accessors)
        for call in iter_calls(module):
            yield from self._check_registration(module, call, families)
            yield from self._check_update(
                module, call, families, accessors, local_families
            )

    def _check_registration(
        self,
        module: SourceModule,
        call: ast.Call,
        families: Dict[str, CatalogFamily],
    ) -> Iterator[Finding]:
        kind = _registration_kind(call)
        if kind is None or not call.args:
            return
        name = literal_str(call.args[0])
        if name is None or not name.startswith("atcd_"):
            return
        declared = families.get(name)
        if declared is None:
            yield module.finding(
                call,
                self.rule_id,
                f"metric {name!r} is registered outside the catalog: declare "
                f"it in {self.catalog_path} and use the accessor",
            )
            return
        labelnames = _labelnames_literal(call)
        if labelnames is not None and labelnames != declared.labelnames:
            yield module.finding(
                call,
                self.rule_id,
                f"metric {name!r} re-registered with labels {labelnames!r}; "
                f"the catalog declares {declared.labelnames!r}",
            )

    def _local_accessor_vars(
        self, module: SourceModule, accessors: Dict[str, str]
    ) -> Dict[str, str]:
        """Variable name -> family name, for ``g = families.x()`` locals.

        Name collisions across functions are resolved pessimistically:
        a variable rebound to two different families is dropped rather
        than guessed at.
        """
        mapping: Dict[str, str] = {}
        poisoned = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            family = self._accessor_family(module, node.value, accessors)
            if family is None:
                if target.id in mapping:
                    poisoned.add(target.id)
                continue
            if target.id in mapping and mapping[target.id] != family:
                poisoned.add(target.id)
            mapping[target.id] = family
        for name in poisoned:
            mapping.pop(name, None)
        return mapping

    @staticmethod
    def _accessor_family(
        module: SourceModule, node: ast.AST, accessors: Dict[str, str]
    ) -> Optional[str]:
        """Family name if ``node`` is a call of a catalog accessor."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, ast.Attribute):
            accessor = func.attr
            origin = module.resolve_name(func.value) or ""
            if not origin.split(".")[-1] == "families":
                return None
        elif isinstance(func, ast.Name):
            origin = module.imports.get(func.id, "")
            accessor = func.id
            if not origin.endswith(f"families.{func.id}"):
                return None
        else:
            return None
        return accessors.get(accessor)

    def _check_update(
        self,
        module: SourceModule,
        call: ast.Call,
        families: Dict[str, CatalogFamily],
        accessors: Dict[str, str],
        local_families: Dict[str, str],
    ) -> Iterator[Finding]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in _UPDATE_METHODS:
            return
        receiver = func.value
        family_name = self._accessor_family(module, receiver, accessors)
        if family_name is None and isinstance(receiver, ast.Name):
            family_name = local_families.get(receiver.id)
        if family_name is None:
            return
        declared = families.get(family_name)
        if declared is None:  # pragma: no cover - accessor map is catalog-fed
            return
        label_keys = tuple(sorted(
            keyword.arg for keyword in call.keywords if keyword.arg is not None
        ))
        declared_keys = tuple(sorted(declared.labelnames))
        if label_keys != declared_keys:
            yield module.finding(
                call,
                self.rule_id,
                f"{func.attr}() on {family_name!r} passes label keys "
                f"{label_keys!r}; the catalog declares {declared_keys!r}",
            )
