"""TXN001 — mutating SQL runs inside the transaction helpers.

The queue's atomicity story (two workers can never claim one task) rests
on every read-check-update sequence running inside ``BEGIN IMMEDIATE``,
and the store's crash-safety on sqlite's connection context manager.
Both modules funnel writes through dedicated helpers —
``SqliteQueue._transaction()`` and ``SqliteStore._execute`` /
``with self._connection:`` — so a bare ``conn.execute("UPDATE ...")``
added in review is a latent race even if every current test passes.

The rule has two parts:

* inside the storage modules, a call executing a mutating statement
  (INSERT/UPDATE/DELETE/REPLACE/CREATE/DROP/ALTER) must be lexically
  within ``with ..._transaction():`` or ``with ...._connection:`` or one
  of the named helper functions;
* outside them, mutating SQL string literals must not appear at all —
  SQL lives in the storage layer, full stop.

``VACUUM`` and ``PRAGMA`` are exempt: sqlite *requires* them to run
outside any transaction, which is why ``_vacuum`` exists.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Sequence

from ..engine import (
    Finding,
    Project,
    Rule,
    SourceModule,
    iter_calls,
    iter_with_items,
    literal_str,
)

__all__ = ["TransactionRule", "SQL_MODULES"]

#: The modules allowed to contain SQL, and therefore checked for
#: transaction discipline.
SQL_MODULES = (
    "repro/distributed/queue.py",
    "repro/engine/store.py",
    "repro/distributed/roots.py",
)

#: Functions that *are* the discipline: their bodies hold the lock /
#: open the transaction themselves.
HELPER_FUNCTIONS = ("_transaction", "_execute", "_query", "_vacuum")

_MUTATING_VERBS = ("INSERT", "UPDATE", "DELETE", "REPLACE", "CREATE", "DROP", "ALTER")
_FIRST_WORD = re.compile(r"^\s*([A-Za-z]+)")


def _mutating_verb(sql: str) -> Optional[str]:
    match = _FIRST_WORD.match(sql)
    if match and match.group(1).upper() in _MUTATING_VERBS:
        return match.group(1).upper()
    return None


def _parameter_names(function: ast.AST) -> set:
    args = function.args
    names = [a.arg for a in args.args + args.kwonlyargs + args.posonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def _execute_sql(call: ast.Call) -> Optional[str]:
    """The SQL literal if ``call`` is ``<x>.execute(<literal>, ...)``."""
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in ("execute", "executemany", "executescript")
        and call.args
    ):
        return literal_str(call.args[0])
    return None


class TransactionRule(Rule):
    rule_id = "TXN001"
    title = "mutating SQL only inside the BEGIN IMMEDIATE helpers"
    rationale = (
        "queue claims and store writes are atomic across processes only "
        "because every mutation runs inside the transaction helpers"
    )

    def __init__(
        self,
        sql_modules: Sequence[str] = SQL_MODULES,
        helper_functions: Sequence[str] = HELPER_FUNCTIONS,
    ) -> None:
        self.sql_modules = tuple(sql_modules)
        self.helper_functions = tuple(helper_functions)

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            inside_sql_layer = module.package_path in self.sql_modules
            for call in iter_calls(module):
                sql = _execute_sql(call)
                if sql is None:
                    continue
                verb = _mutating_verb(sql)
                if verb is None:
                    continue
                if not inside_sql_layer:
                    yield module.finding(
                        call,
                        self.rule_id,
                        f"mutating SQL ({verb}) outside the storage layer "
                        f"({module.package_path}): route writes through the "
                        "queue/store APIs",
                    )
                elif not self._is_disciplined(module, call):
                    yield module.finding(
                        call,
                        self.rule_id,
                        f"mutating SQL ({verb}) executed outside a "
                        "transaction helper: wrap it in `with "
                        "self._transaction():` / `with self._connection:` "
                        "or one of " + ", ".join(self.helper_functions),
                    )

    # ------------------------------------------------------------------ #
    def _is_disciplined(self, module: SourceModule, call: ast.Call) -> bool:
        function = module.enclosing_function(call)
        if function is not None and function.name in self.helper_functions:
            return True
        for context_expr in iter_with_items(module, call):
            if self._is_transaction_context(module, context_expr):
                return True
        # ``connection.execute(...)`` where ``connection`` is a parameter
        # of the enclosing function: the only way callers obtain that
        # binding is ``with self._transaction() as connection:``, so the
        # transaction is managed one frame up (``_expire_sql`` pattern).
        # A bare ``self._connection.execute`` never matches — the
        # receiver must be a plain parameter name, not an attribute.
        if (
            function is not None
            and isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id not in ("self", "cls")
            and call.func.value.id in _parameter_names(function)
        ):
            return True
        return False

    @staticmethod
    def _is_transaction_context(module: SourceModule, expr: ast.AST) -> bool:
        # ``with self._transaction() as conn:`` (any receiver chain).
        if isinstance(expr, ast.Call):
            dotted = module.dotted_name(expr.func)
            if dotted is not None and dotted.split(".")[-1] == "_transaction":
                return True
            return False
        # ``with self._connection:`` — sqlite3's own transaction manager.
        dotted = module.dotted_name(expr)
        return dotted is not None and dotted.split(".")[-1] == "_connection"
