"""Core machinery of the static analyzer: modules, projects, rules.

Everything is stdlib-only (``ast`` + ``tokenize``), mirroring the rest of
the package: the analyzer must run in CI and pre-commit hooks without
installing anything.

The unit of analysis is a :class:`Project` — the set of parsed files one
check run sees.  Rules get the whole project, not one file at a time,
because several invariants are cross-file by nature: MET001 compares
call sites against the catalog parsed out of ``obs/families.py``, and
LCK001 builds the lock-nesting graph across every module before it can
look for cycles.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import os
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Finding",
    "SourceModule",
    "Project",
    "Rule",
    "CheckReport",
    "StaticCheckError",
    "run_check",
]

#: Generic per-line suppression: ``# staticcheck: disable=RULEID(reason)``.
#: The reason is part of the grammar on purpose — a suppression with no
#: rationale is exactly the kind of prose-only invariant this tool
#: replaces.
DISABLE_MARKER = re.compile(
    r"#\s*staticcheck:\s*disable=(?P<rule>[A-Z]+[0-9]+)\s*\((?P<reason>[^)]+)\)"
)


class StaticCheckError(ValueError):
    """A check run that cannot proceed (bad path, unknown rule id).

    Subclasses :class:`ValueError` so the CLI's user-error net reports it
    as a one-line exit-2 message, per the contract CLI001 itself enforces.
    """


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def fingerprint(self) -> Tuple[str, str, str]:
        """The baseline identity: stable across unrelated edits.

        Line and column are deliberately excluded — code above a
        grandfathered finding moving it down a line must not un-baseline
        it.
        """
        return (self.rule, self.path, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _iter_python_files(path: str) -> Iterator[str]:
    if os.path.isfile(path):
        yield path
        return
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def _package_path(display_path: str) -> str:
    """The ``repro/...``-relative form rules target files by.

    ``src/repro/core/bottom_up.py`` and an absolute checkout path both
    normalize to ``repro/core/bottom_up.py``; a file outside any
    ``repro`` package keeps its given (posix) path, so the analyzer still
    works on fixture trees in tests.
    """
    parts = display_path.replace(os.sep, "/").split("/")
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return "/".join(parts)


class SourceModule:
    """One parsed source file plus the lookup structures rules share.

    Parsing, tokenizing and parent-linking happen once here; every rule
    then reads the same tree.  ``display_path`` is what findings report
    (as given on the command line); ``package_path`` is the normalized
    ``repro/...`` form rules use to scope themselves to files.
    """

    def __init__(self, display_path: str, source: str) -> None:
        self.display_path = display_path.replace(os.sep, "/")
        self.package_path = _package_path(display_path)
        self.source = source
        try:
            self.tree = ast.parse(source)
        except SyntaxError as error:
            raise StaticCheckError(
                f"{display_path} does not parse: {error}"
            ) from error
        self.comments = self._collect_comments(source)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.imports = self._collect_imports(self.tree)

    # -- construction helpers ------------------------------------------ #
    @staticmethod
    def _collect_comments(source: str) -> Dict[int, str]:
        comments: Dict[int, str] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments[token.start[0]] = token.string
        except tokenize.TokenizeError:  # pragma: no cover - ast parsed it
            pass
        return comments

    @staticmethod
    def _collect_imports(tree: ast.Module) -> Dict[str, str]:
        """Local name -> dotted origin, for resolving call targets.

        ``from time import time`` maps ``time -> time.time``;
        ``from ..obs import families as obs_families`` maps
        ``obs_families -> ..obs.families`` (relative levels kept as
        leading dots — rules match on suffixes, not absolute packages).
        """
        mapping: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mapping[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        mapping[head] = head
            elif isinstance(node, ast.ImportFrom):
                prefix = "." * node.level + (node.module or "")
                for alias in node.names:
                    origin = f"{prefix}.{alias.name}" if prefix else alias.name
                    mapping[alias.asname or alias.name] = origin
        return mapping

    # -- navigation ---------------------------------------------------- #
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.FunctionDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # -- name resolution ----------------------------------------------- #
    @staticmethod
    def dotted_name(node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else ``None``."""
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        return ".".join(reversed(parts))

    def resolve_name(self, node: ast.AST) -> Optional[str]:
        """The dotted name with its head rewritten through the imports.

        ``obs_families.queue_ops_total`` resolves to
        ``..obs.families.queue_ops_total``; an unimported head stays as
        written (locals resolve to themselves).
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    def finding(
        self, node: ast.AST, rule: str, message: str
    ) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


class Project:
    """The set of modules one check run analyzes."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)
        self._by_display = {m.display_path: m for m in self.modules}

    @classmethod
    def from_paths(cls, paths: Sequence[str]) -> "Project":
        modules: List[SourceModule] = []
        for path in paths:
            if not os.path.exists(path):
                raise StaticCheckError(f"no such file or directory: {path!r}")
            for file_path in _iter_python_files(path):
                with open(file_path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                modules.append(SourceModule(os.path.relpath(file_path), source))
        return cls(modules)

    def module_by_display(self, display_path: str) -> Optional[SourceModule]:
        return self._by_display.get(display_path)

    def modules_matching(self, *suffixes: str) -> List[SourceModule]:
        """Modules whose package path starts with any of ``suffixes``.

        A suffix ending in ``/`` matches a directory subtree; otherwise it
        must match the file exactly.
        """
        matched = []
        for module in self.modules:
            for suffix in suffixes:
                if suffix.endswith("/"):
                    if module.package_path.startswith(suffix):
                        matched.append(module)
                        break
                elif module.package_path == suffix:
                    matched.append(module)
                    break
        return matched


class Rule:
    """Base class: one machine-checked project invariant.

    Subclasses set ``rule_id`` / ``title`` / ``rationale`` and implement
    :meth:`check`, yielding findings over the whole project.  Rules take
    their configuration as constructor arguments with production
    defaults, so the fixture tests can retarget them at synthetic trees
    without a config-file layer.
    """

    rule_id: str = "RULE000"
    title: str = ""
    rationale: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.rule_id}>"


@dataclasses.dataclass
class CheckReport:
    """What one run produced, before any baseline is applied."""

    findings: List[Finding]
    files_checked: int
    rules_run: List[str]
    suppressed: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [finding.to_dict() for finding in self.findings],
            "files_checked": self.files_checked,
            "rules_run": self.rules_run,
            "suppressed": self.suppressed,
        }


def _is_disabled(project: Project, finding: Finding) -> bool:
    module = project.module_by_display(finding.path)
    if module is None:
        return False
    comment = module.comments.get(finding.line, "")
    match = DISABLE_MARKER.search(comment)
    return bool(match and match.group("rule") == finding.rule)


def run_check(project: Project, rules: Sequence[Rule]) -> CheckReport:
    """Run ``rules`` over ``project`` and return the surviving findings.

    Findings on lines carrying a matching ``staticcheck: disable``
    marker are dropped (counted in ``suppressed``); everything else comes
    back sorted by location for stable output.
    """
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(project):
            if _is_disabled(project, finding):
                suppressed += 1
            else:
                findings.append(finding)
    return CheckReport(
        findings=sorted(set(findings)),
        files_checked=len(project.modules),
        rules_run=[rule.rule_id for rule in rules],
        suppressed=suppressed,
    )


def iter_calls(module: SourceModule) -> Iterator[ast.Call]:
    """Every call expression in the module (shared by most rules)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            yield node


def literal_str(node: ast.AST) -> Optional[str]:
    """The value of a plain string literal (f-strings yield their static
    prefix, which is enough to classify SQL verbs)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def iter_with_items(
    module: SourceModule, node: ast.AST
) -> Iterator[ast.expr]:
    """Context-manager expressions of every ``with`` enclosing ``node``."""
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                yield item.context_expr
