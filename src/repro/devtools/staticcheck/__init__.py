"""``atcd check`` — the project-invariant static analyzer.

The correctness story of this repo leans on invariants that unit tests
only probe anecdotally: byte-identical solver results (so kernels must
not read wall clocks or unseeded RNGs), bounded ``/metrics`` cardinality
(so every metric name and label key must come from the closed catalog in
:mod:`repro.obs.families`), atomic queue state transitions (so mutating
SQL must run inside the ``BEGIN IMMEDIATE`` transaction helpers), lock
hygiene (module state mutated under its lock, no lock-order cycles) and
the CLI's exit-code contract (user errors exit 2).  This package turns
each of those into an AST rule that CI runs on every push.

Layout
------
``engine``
    The visitor framework: :class:`SourceModule` (parse + comment map +
    parent links + import resolution), :class:`Project` (the file set one
    check run sees), :class:`Rule` (base class), :func:`run_check`.
``baseline``
    The committed-baseline workflow: grandfathered findings live in a
    JSON file keyed by ``(rule, path, message)`` — line numbers drift,
    messages don't — and ``atcd check --baseline`` subtracts them.
``rules``
    One module per invariant; see :data:`rules.ALL_RULES`.

Suppression
-----------
A finding on a line carrying ``# staticcheck: disable=RULEID(reason)``
is suppressed by the engine.  EXC001 additionally honours its dedicated
``# staticcheck: allow-broad-except(reason)`` marker — the reason is
mandatory, so every surviving broad handler documents why it is broad.
"""

from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import (
    CheckReport,
    Finding,
    Project,
    Rule,
    SourceModule,
    StaticCheckError,
    run_check,
)
from .rules import ALL_RULES, default_rules, rule_ids, select_rules

__all__ = [
    "ALL_RULES",
    "CheckReport",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "Project",
    "Rule",
    "SourceModule",
    "StaticCheckError",
    "apply_baseline",
    "default_rules",
    "load_baseline",
    "rule_ids",
    "run_check",
    "select_rules",
    "write_baseline",
]
