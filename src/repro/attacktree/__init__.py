"""Attack-tree substrate: data structures, decorations, catalogues, generators.

This subpackage implements everything the cost-damage algorithms need from
the attack-tree formalism itself (Definitions 1–5 of the paper): the rooted
DAG of OR/AND gates over basic attack steps, the cost/damage/probability
decorations, binarisation and other rewrites, serialization, the case-study
trees from the literature, and the random-AT generator used in the
evaluation.
"""

from .attributes import (
    AttributeError_,
    CostDamageAT,
    CostDamageProbAT,
    validate_cost_map,
    validate_damage_map,
    validate_probability_map,
)
from .binarize import binarize_cd, binarize_cdp, binarize_tree, is_binary
from .builder import AttackTreeBuilder
from .node import Node, NodeType
from .tree import AttackTree, AttackTreeError
from . import catalog, interop, metrics, random_gen, serialization, transform

__all__ = [
    "AttackTree",
    "AttackTreeError",
    "AttackTreeBuilder",
    "AttributeError_",
    "CostDamageAT",
    "CostDamageProbAT",
    "Node",
    "NodeType",
    "binarize_cd",
    "binarize_cdp",
    "binarize_tree",
    "is_binary",
    "catalog",
    "interop",
    "metrics",
    "random_gen",
    "serialization",
    "transform",
    "validate_cost_map",
    "validate_damage_map",
    "validate_probability_map",
]
