"""Binarisation of attack trees.

The bottom-up recursions of the paper (Sections VI and IX) are stated for
*binary* ATs — every gate has exactly two children — "purely to simplify
notation": any AT can be rewritten into an equivalent binary one by chaining
gates.  Our solvers handle arbitrary arity directly, but this module provides
the explicit rewrite so that tests can confirm the two formulations agree and
so that users can normalise trees when interfacing with other tools.

The rewrite replaces a gate ``g = OP(v1, ..., vk)`` (k > 2) with a right-deep
chain ``OP(v1, OP(v2, OP(..., OP(v_{k-1}, v_k))))``.  The freshly introduced
helper gates carry zero damage so that the cost/damage semantics of every
*original* node — and hence ĉ, d̂ and d̂_E — are unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .attributes import CostDamageAT, CostDamageProbAT
from .node import Node
from .tree import AttackTree

__all__ = ["binarize_tree", "binarize_cd", "binarize_cdp", "is_binary"]

_HELPER_SUFFIX = "__bin"


def is_binary(tree: AttackTree) -> bool:
    """Return ``True`` when every gate of the tree has exactly two children.

    Unary gates are also rejected: the paper's binary normal form has
    ``|Ch(v)| ∈ {0, 2}``.
    """
    return all(
        tree.node(name).arity == 2 for name in tree.gates
    )


def _fresh_name(base: str, index: int, existing: set) -> str:
    """Return a helper-gate name that does not clash with existing nodes."""
    candidate = f"{base}{_HELPER_SUFFIX}{index}"
    while candidate in existing:
        candidate = candidate + "_"
    return candidate


def binarize_tree(tree: AttackTree) -> Tuple[AttackTree, Dict[str, str]]:
    """Rewrite an attack tree so that every gate has exactly two children.

    Gates with a single child are left untouched (they are already handled
    by the fold-based solvers and cannot be split further).

    Returns
    -------
    (binary_tree, helper_origin):
        ``binary_tree`` is the rewritten tree; ``helper_origin`` maps each
        freshly introduced helper-gate name to the original gate it was
        split from (useful for mapping results back).
    """
    existing = set(tree.nodes)
    new_nodes: List[Node] = []
    helper_origin: Dict[str, str] = {}

    for name in tree.node_names:
        node = tree.node(name)
        if node.is_bas or node.arity <= 2:
            new_nodes.append(node)
            continue
        # Split an n-ary gate into a right-deep chain of binary gates.
        children = list(node.children)
        # Build helpers bottom-up: the last helper pairs the final two children.
        previous = children[-1]
        helper_count = 0
        for child in reversed(children[1:-1]):
            helper_count += 1
            helper_name = _fresh_name(node.name, helper_count, existing)
            existing.add(helper_name)
            helper_origin[helper_name] = node.name
            new_nodes.append(
                Node(
                    name=helper_name,
                    type=node.type,
                    children=(child, previous),
                    label=f"binarisation helper for {node.name}",
                )
            )
            previous = helper_name
        new_nodes.append(node.with_children((children[0], previous)))

    return AttackTree(new_nodes, root=tree.root), helper_origin


def binarize_cd(cdat: CostDamageAT) -> Tuple[CostDamageAT, Dict[str, str]]:
    """Binarise a cd-AT; helper gates carry zero damage.

    The BAS set, the costs and the damage of every original node are
    preserved, so every attack has the same cost and damage in the original
    and in the binarised cd-AT.
    """
    binary_tree, helper_origin = binarize_tree(cdat.tree)
    damage = {n: cdat.damage.get(n, 0.0) for n in cdat.tree.node_names}
    return CostDamageAT(binary_tree, dict(cdat.cost), damage), helper_origin


def binarize_cdp(cdpat: CostDamageProbAT) -> Tuple[CostDamageProbAT, Dict[str, str]]:
    """Binarise a cdp-AT; helper gates carry zero damage."""
    binary_tree, helper_origin = binarize_tree(cdpat.tree)
    damage = {n: cdpat.damage.get(n, 0.0) for n in cdpat.tree.node_names}
    return (
        CostDamageProbAT(binary_tree, dict(cdpat.cost), damage, dict(cdpat.probability)),
        helper_origin,
    )
