"""Random attack-tree generation (Section X.C–D of the paper).

The paper evaluates computation time on 500 randomly generated ATs.  The
generation procedure (adapted from [39]) combines literature building blocks
(Table IV) using three operations:

1. replace a random BAS of the first AT by the root of the second AT;
2. give the roots of the two ATs a common fresh parent of random type;
3. as (2), but additionally identify one randomly chosen BAS of each AT
   (which creates sharing, i.e. a DAG).

Combination continues until the result has at least ``n`` nodes; this is
repeated for every ``1 ≤ n ≤ 100`` (five trees per ``n``), giving the DAG
suite ``T_DAG``.  The treelike suite ``T_tree`` uses only treelike blocks and
only the first two operations... (operation 1 keeps trees treelike only if
the replaced BAS had a single parent, which is guaranteed for treelike
hosts; operation 3 always produces a DAG.)

Decorations are drawn uniformly: ``c(v) ∈ {1, …, 10}``,
``d(v) ∈ {0, …, 10}`` and ``p(v) ∈ {0.1, 0.2, …, 1.0}`` (Section X.C).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .attributes import CostDamageAT, CostDamageProbAT
from .catalog import building_blocks
from .node import Node, NodeType
from .transform import replace_bas_with_tree
from .tree import AttackTree

__all__ = [
    "DEFAULT_COST_CHOICES",
    "DEFAULT_DAMAGE_CHOICES",
    "DEFAULT_PROBABILITY_CHOICES",
    "combine_replace_bas",
    "combine_common_parent",
    "combine_shared_bas",
    "random_attack_tree",
    "random_decoration",
    "random_cd_at",
    "random_cdp_at",
    "generate_suite",
    "RandomSuiteSpec",
]

#: The paper's decoration ranges (Section X.C), the single source for every
#: default in this module: ``c(v) ∈ {1..10}``, ``d(v) ∈ {0..10}``,
#: ``p(v) ∈ {0.1, ..., 1.0}``.
DEFAULT_COST_CHOICES: Tuple[int, ...] = tuple(range(1, 11))
DEFAULT_DAMAGE_CHOICES: Tuple[int, ...] = tuple(range(0, 11))
DEFAULT_PROBABILITY_CHOICES: Tuple[float, ...] = tuple(
    round(0.1 * k, 1) for k in range(1, 11)
)


def _prefixed(tree: AttackTree, prefix: str) -> AttackTree:
    """Return a copy of ``tree`` with every node name prefixed."""
    nodes = [
        Node(
            name=prefix + node.name,
            type=node.type,
            children=tuple(prefix + child for child in node.children),
            label=node.label,
        )
        for node in tree.nodes.values()
    ]
    return AttackTree(nodes, root=prefix + tree.root)


def combine_replace_bas(
    first: AttackTree, second: AttackTree, rng: random.Random, prefix: str
) -> AttackTree:
    """Combination operation 1: replace a random BAS of ``first`` by ``second``."""
    bas = rng.choice(sorted(first.basic_attack_steps))
    return replace_bas_with_tree(first, bas, second, prefix=prefix)


def combine_common_parent(
    first: AttackTree, second: AttackTree, rng: random.Random, prefix: str
) -> AttackTree:
    """Combination operation 2: join the two roots under a fresh random gate."""
    second = _prefixed(second, prefix)
    gate_type = rng.choice([NodeType.OR, NodeType.AND])
    root_name = prefix + "root"
    nodes = list(first.nodes.values()) + list(second.nodes.values())
    nodes.append(
        Node(name=root_name, type=gate_type, children=(first.root, second.root))
    )
    return AttackTree(nodes, root=root_name)


def combine_shared_bas(
    first: AttackTree, second: AttackTree, rng: random.Random, prefix: str
) -> AttackTree:
    """Combination operation 3: common parent plus one identified BAS pair.

    A random BAS of the second tree is replaced (in the second tree) by a
    random BAS of the first tree, so the resulting AT shares that BAS between
    both halves and is therefore DAG-like.
    """
    second = _prefixed(second, prefix)
    shared_of_first = rng.choice(sorted(first.basic_attack_steps))
    removed_of_second = rng.choice(sorted(second.basic_attack_steps))

    nodes: Dict[str, Node] = {}
    for node in first.nodes.values():
        nodes[node.name] = node
    for node in second.nodes.values():
        if node.name == removed_of_second:
            continue
        children = tuple(
            shared_of_first if child == removed_of_second else child
            for child in node.children
        )
        nodes[node.name] = node.with_children(children) if node.is_gate else node

    gate_type = rng.choice([NodeType.OR, NodeType.AND])
    root_name = prefix + "root"
    nodes[root_name] = Node(
        name=root_name, type=gate_type, children=(first.root, second.root)
    )
    return AttackTree(nodes.values(), root=root_name)


def random_attack_tree(
    min_nodes: int,
    rng: random.Random,
    treelike: bool = False,
    blocks: Optional[Sequence[AttackTree]] = None,
) -> AttackTree:
    """Generate a random AT with at least ``min_nodes`` nodes.

    Parameters
    ----------
    min_nodes:
        Combination stops as soon as the tree reaches this many nodes.
    rng:
        Source of randomness (callers pass a seeded ``random.Random``).
    treelike:
        When ``True``, only treelike building blocks and the first two
        combination operations are used, so the result is treelike.
    blocks:
        Building blocks to draw from; defaults to the Table IV stand-ins.
    """
    if min_nodes < 1:
        raise ValueError("min_nodes must be positive")
    if blocks is None:
        blocks = building_blocks(treelike_only=treelike)
    if not blocks:
        raise ValueError("no building blocks available")

    current = rng.choice(list(blocks))
    step = 0
    while len(current) < min_nodes:
        step += 1
        other = rng.choice(list(blocks))
        prefix = f"m{step}_"
        if treelike:
            operation = rng.choice([combine_replace_bas, combine_common_parent])
        else:
            operation = rng.choice(
                [combine_replace_bas, combine_common_parent, combine_shared_bas]
            )
        current = operation(current, other, rng, prefix)
    return current


def random_decoration(
    tree: AttackTree,
    rng: random.Random,
    cost_choices: Sequence[int] = DEFAULT_COST_CHOICES,
    damage_choices: Sequence[int] = DEFAULT_DAMAGE_CHOICES,
    probability_choices: Sequence[float] = DEFAULT_PROBABILITY_CHOICES,
) -> Tuple[Dict[str, float], Dict[str, float], Dict[str, float]]:
    """Draw random cost/damage/probability maps for a tree (Section X.C).

    Returns ``(cost, damage, probability)`` where costs and probabilities
    cover the BASs and damage covers every node.
    """
    cost = {b: float(rng.choice(list(cost_choices))) for b in sorted(tree.basic_attack_steps)}
    damage = {n: float(rng.choice(list(damage_choices))) for n in sorted(tree.nodes)}
    probability = {
        b: float(rng.choice(list(probability_choices)))
        for b in sorted(tree.basic_attack_steps)
    }
    return cost, damage, probability


def random_cd_at(
    tree: AttackTree,
    rng: random.Random,
    cost_choices: Sequence[int] = DEFAULT_COST_CHOICES,
    damage_choices: Sequence[int] = DEFAULT_DAMAGE_CHOICES,
) -> CostDamageAT:
    """Decorate a tree with random costs and damages."""
    cost, damage, _ = random_decoration(
        tree, rng, cost_choices=cost_choices, damage_choices=damage_choices
    )
    return CostDamageAT(tree, cost, damage)


def random_cdp_at(
    tree: AttackTree,
    rng: random.Random,
    cost_choices: Sequence[int] = DEFAULT_COST_CHOICES,
    damage_choices: Sequence[int] = DEFAULT_DAMAGE_CHOICES,
    probability_choices: Sequence[float] = DEFAULT_PROBABILITY_CHOICES,
) -> CostDamageProbAT:
    """Decorate a tree with random costs, damages and probabilities."""
    cost, damage, probability = random_decoration(
        tree,
        rng,
        cost_choices=cost_choices,
        damage_choices=damage_choices,
        probability_choices=probability_choices,
    )
    return CostDamageProbAT(tree, cost, damage, probability)


@dataclass(frozen=True)
class RandomSuiteSpec:
    """Parameters of a random evaluation suite (Section X.D).

    The paper uses ``max_target_size=100`` and ``trees_per_size=5`` for a
    total of 500 ATs per suite; tests and quick benchmarks use smaller specs.

    ``sizes`` optionally restricts the suite to an explicit tuple of target
    sizes instead of the full ``1 ≤ n ≤ max_target_size`` sweep — this is
    how the declarative workload layer (:mod:`repro.workloads`) drives the
    generator without materialising hundreds of unwanted trees.  The
    decoration ``*_choices`` default to the paper's ranges (Section X.C).
    """

    max_target_size: int = 100
    trees_per_size: int = 5
    treelike: bool = False
    seed: int = 2023
    sizes: Optional[Tuple[int, ...]] = None
    cost_choices: Tuple[int, ...] = DEFAULT_COST_CHOICES
    damage_choices: Tuple[int, ...] = DEFAULT_DAMAGE_CHOICES
    probability_choices: Tuple[float, ...] = DEFAULT_PROBABILITY_CHOICES

    def target_sizes(self) -> Tuple[int, ...]:
        """The size sweep this spec describes."""
        if self.sizes is not None:
            return tuple(self.sizes)
        return tuple(range(1, self.max_target_size + 1))


def generate_suite(spec: RandomSuiteSpec) -> List[CostDamageProbAT]:
    """Generate a full random suite of decorated ATs.

    For every target size in ``spec.target_sizes()`` we generate
    ``trees_per_size`` ATs with at least that many nodes and random
    decorations.  Generation is deterministic in ``spec.seed``.
    """
    rng = random.Random(spec.seed)
    blocks = building_blocks(treelike_only=spec.treelike)
    suite: List[CostDamageProbAT] = []
    for target in spec.target_sizes():
        for _ in range(spec.trees_per_size):
            tree = random_attack_tree(target, rng, treelike=spec.treelike, blocks=blocks)
            suite.append(
                random_cdp_at(
                    tree,
                    rng,
                    cost_choices=spec.cost_choices,
                    damage_choices=spec.damage_choices,
                    probability_choices=spec.probability_choices,
                )
            )
    return suite
