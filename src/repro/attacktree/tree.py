"""The attack-tree data structure.

An :class:`AttackTree` is a rooted directed acyclic graph (Definition 1 of
the paper).  Despite the name it need not be a tree; when it is, we call it
*treelike*, and the faster bottom-up algorithms of Sections VI and IX apply.

The class is deliberately immutable after construction: algorithms memoise
derived data (topological order, BAS sets, treelike-ness) and rely on the
structure not changing underneath them.  To build trees incrementally, use
:class:`repro.attacktree.builder.AttackTreeBuilder`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from .node import Node, NodeType

__all__ = ["AttackTree", "AttackTreeError"]


class AttackTreeError(ValueError):
    """Raised when an attack tree is structurally invalid."""


class AttackTree:
    """A rooted DAG of OR/AND gates over basic attack steps.

    Parameters
    ----------
    nodes:
        The nodes of the tree.  Child references must resolve to nodes in
        this collection; every node except the root must be reachable from
        the root; the graph must be acyclic; leaves must be BASs and gates
        must be internal (this is enforced by :class:`Node` itself).
    root:
        Name of the root node.  If omitted, the unique node without parents
        is used; it is an error if that node is not unique.

    Notes
    -----
    The node set ``N``, edge set ``E``, BAS set ``B``, children ``Ch(v)``
    and the treelike predicate of the paper map to :attr:`nodes`,
    :meth:`edges`, :attr:`basic_attack_steps`, :meth:`children` and
    :attr:`is_treelike` respectively.
    """

    __slots__ = (
        "_nodes",
        "_root",
        "_parents",
        "_topological_order",
        "_bas_names",
        "_is_treelike",
        "_descendants_cache",
    )

    def __init__(self, nodes: Iterable[Node], root: Optional[str] = None) -> None:
        node_list = list(nodes)
        self._nodes: Dict[str, Node] = {}
        for node in node_list:
            if node.name in self._nodes:
                raise AttackTreeError(f"duplicate node name {node.name!r}")
            self._nodes[node.name] = node

        if not self._nodes:
            raise AttackTreeError("an attack tree must have at least one node")

        self._parents: Dict[str, List[str]] = {name: [] for name in self._nodes}
        for node in self._nodes.values():
            for child in node.children:
                if child not in self._nodes:
                    raise AttackTreeError(
                        f"node {node.name!r} references unknown child {child!r}"
                    )
                self._parents[child].append(node.name)

        self._root = self._resolve_root(root)
        self._topological_order = self._compute_topological_order()
        self._descendants_cache: Dict[str, FrozenSet[str]] = {}
        self._check_reachability()
        self._bas_names: FrozenSet[str] = frozenset(
            name for name, node in self._nodes.items() if node.is_bas
        )
        self._is_treelike = all(
            len(parents) <= 1 for parents in self._parents.values()
        )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _resolve_root(self, root: Optional[str]) -> str:
        if root is not None:
            if root not in self._nodes:
                raise AttackTreeError(f"root {root!r} is not a node of the tree")
            return root
        orphan_nodes = [name for name, parents in self._parents.items() if not parents]
        if len(orphan_nodes) != 1:
            raise AttackTreeError(
                "root is ambiguous: nodes without parents are "
                f"{sorted(orphan_nodes)!r}; pass root= explicitly"
            )
        return orphan_nodes[0]

    def _compute_topological_order(self) -> Tuple[str, ...]:
        """Return node names in a child-before-parent (bottom-up) order.

        Raises :class:`AttackTreeError` if the graph has a cycle.
        """
        state: Dict[str, int] = {}  # 0 = unvisited, 1 = on stack, 2 = done
        order: List[str] = []

        for start in self._nodes:
            if state.get(start, 0) == 2:
                continue
            # Iterative DFS to avoid recursion limits on deep trees.
            stack: List[Tuple[str, int]] = [(start, 0)]
            while stack:
                name, child_index = stack.pop()
                if child_index == 0:
                    if state.get(name, 0) == 1:
                        raise AttackTreeError(f"cycle detected through node {name!r}")
                    if state.get(name, 0) == 2:
                        continue
                    state[name] = 1
                children = self._nodes[name].children
                if child_index < len(children):
                    stack.append((name, child_index + 1))
                    child = children[child_index]
                    if state.get(child, 0) == 1:
                        raise AttackTreeError(f"cycle detected through node {child!r}")
                    if state.get(child, 0) == 0:
                        stack.append((child, 0))
                else:
                    state[name] = 2
                    order.append(name)
        return tuple(order)

    def _check_reachability(self) -> None:
        reachable = self.descendants(self._root) | {self._root}
        unreachable = set(self._nodes) - reachable
        if unreachable:
            raise AttackTreeError(
                f"nodes not reachable from root {self._root!r}: {sorted(unreachable)!r}"
            )

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> str:
        """Name of the root node ``R_T``."""
        return self._root

    @property
    def nodes(self) -> Mapping[str, Node]:
        """Read-only mapping from node name to :class:`Node`."""
        return dict(self._nodes)

    @property
    def node_names(self) -> Tuple[str, ...]:
        """All node names in bottom-up topological order."""
        return self._topological_order

    @property
    def basic_attack_steps(self) -> FrozenSet[str]:
        """The set ``B`` of BAS names."""
        return self._bas_names

    @property
    def gates(self) -> Tuple[str, ...]:
        """Names of all OR/AND gates in bottom-up topological order."""
        return tuple(n for n in self._topological_order if self._nodes[n].is_gate)

    @property
    def is_treelike(self) -> bool:
        """``True`` when every node has at most one parent."""
        return self._is_treelike

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __iter__(self) -> Iterator[str]:
        return iter(self._topological_order)

    def node(self, name: str) -> Node:
        """Return the :class:`Node` with the given name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError(f"no node named {name!r} in this attack tree") from None

    def node_type(self, name: str) -> NodeType:
        """Return ``γ(v)`` for the named node."""
        return self.node(name).type

    def children(self, name: str) -> Tuple[str, ...]:
        """Return ``Ch(v)``: the children of the named node."""
        return self.node(name).children

    def parents(self, name: str) -> Tuple[str, ...]:
        """Return the parents of the named node (empty for the root)."""
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r} in this attack tree")
        return tuple(self._parents[name])

    def edges(self) -> Tuple[Tuple[str, str], ...]:
        """Return the edge set ``E`` as (parent, child) pairs."""
        return tuple(
            (node.name, child)
            for node in self._nodes.values()
            for child in node.children
        )

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #
    def topological_order(self, reverse: bool = False) -> Tuple[str, ...]:
        """Return node names bottom-up (children first) or top-down.

        Parameters
        ----------
        reverse:
            When ``True``, return a top-down (parent-before-child) order.
        """
        if reverse:
            return tuple(reversed(self._topological_order))
        return self._topological_order

    def descendants(self, name: str) -> FrozenSet[str]:
        """Return all strict descendants of the named node."""
        if name in self._descendants_cache:
            return self._descendants_cache[name]
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r} in this attack tree")
        seen: Set[str] = set()
        stack = list(self._nodes[name].children)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._nodes[current].children)
        result = frozenset(seen)
        self._descendants_cache[name] = result
        return result

    def ancestors(self, name: str) -> FrozenSet[str]:
        """Return all strict ancestors of the named node."""
        if name not in self._nodes:
            raise KeyError(f"no node named {name!r} in this attack tree")
        seen: Set[str] = set()
        stack = list(self._parents[name])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._parents[current])
        return frozenset(seen)

    def bas_descendants(self, name: str) -> FrozenSet[str]:
        """Return the BASs below (and possibly including) the named node.

        This is the set ``B_v`` used by the bottom-up algorithms.
        """
        node = self.node(name)
        if node.is_bas:
            return frozenset({name})
        return frozenset(d for d in self.descendants(name) if d in self._bas_names)

    def subtree(self, name: str) -> "AttackTree":
        """Return the sub-DAG ``T_v`` rooted at the named node."""
        keep = self.descendants(name) | {name}
        return AttackTree([self._nodes[n] for n in keep], root=name)

    def max_arity(self) -> int:
        """Return the largest number of children over all gates."""
        arities = [node.arity for node in self._nodes.values() if node.is_gate]
        return max(arities) if arities else 0

    def depth(self) -> int:
        """Return the number of edges on the longest root-to-leaf path."""
        depth_of: Dict[str, int] = {}
        for name in self._topological_order:  # children before parents
            node = self._nodes[name]
            if node.is_bas:
                depth_of[name] = 0
            else:
                depth_of[name] = 1 + max(depth_of[c] for c in node.children)
        return depth_of[self._root]

    def shared_nodes(self) -> FrozenSet[str]:
        """Return names of nodes with more than one parent (DAG sharing)."""
        return frozenset(
            name for name, parents in self._parents.items() if len(parents) > 1
        )

    # ------------------------------------------------------------------ #
    # structure function
    # ------------------------------------------------------------------ #
    def structure_function(self, attack: Iterable[str]) -> Dict[str, bool]:
        """Evaluate the structure function ``S(x, ·)`` for every node.

        Parameters
        ----------
        attack:
            Collection of activated BAS names (the attack ``x`` of
            Definition 2).  Names that are not BASs of this tree raise
            :class:`KeyError`.

        Returns
        -------
        dict
            Mapping node name -> whether the node is reached by the attack
            (Definition 3).
        """
        active = set(attack)
        unknown = active - self._bas_names
        if unknown:
            raise KeyError(f"attack references non-BAS nodes: {sorted(unknown)!r}")
        reached: Dict[str, bool] = {}
        for name in self._topological_order:
            node = self._nodes[name]
            if node.is_bas:
                reached[name] = name in active
            elif node.type is NodeType.OR:
                reached[name] = any(reached[c] for c in node.children)
            else:  # AND
                reached[name] = all(reached[c] for c in node.children)
        return reached

    def is_successful(self, attack: Iterable[str]) -> bool:
        """Return ``True`` when the attack reaches the root node."""
        return self.structure_function(attack)[self._root]

    # ------------------------------------------------------------------ #
    # comparison / display
    # ------------------------------------------------------------------ #
    def structurally_equal(self, other: "AttackTree") -> bool:
        """Return ``True`` when both trees have identical nodes and root."""
        if not isinstance(other, AttackTree):
            return NotImplemented
        return self._root == other._root and self._nodes == other._nodes

    def __repr__(self) -> str:
        kind = "treelike" if self._is_treelike else "DAG"
        return (
            f"AttackTree(root={self._root!r}, nodes={len(self._nodes)}, "
            f"bas={len(self._bas_names)}, {kind})"
        )

    def pretty(self) -> str:
        """Return a multi-line indented rendering of the tree.

        Shared sub-DAGs are printed once per parent (with a ``*`` marker on
        repeat visits) so the output stays linear in the number of edges.
        """
        lines: List[str] = []
        seen: Set[str] = set()

        def visit(name: str, indent: int) -> None:
            node = self._nodes[name]
            marker = ""
            if node.is_gate and name in seen:
                marker = " (*)"
            lines.append("  " * indent + node.describe() + marker)
            if node.is_gate and name not in seen:
                seen.add(name)
                for child in node.children:
                    visit(child, indent + 1)

        visit(self._root, 0)
        return "\n".join(lines)
