"""Node types for attack trees.

An attack tree (AT) is a rooted directed acyclic graph whose leaves are
*basic attack steps* (BASs) and whose internal nodes are OR- or AND-gates
(Definition 1 of the paper).  This module defines the node-level vocabulary:
the :class:`NodeType` enumeration and the :class:`Node` record stored by
:class:`repro.attacktree.tree.AttackTree`.

Nodes are identified by a string name that is unique within a tree.  The
:class:`Node` object itself is an immutable value object; all structural
information (children, parents) lives in the tree so that nodes can be shared
between trees without aliasing surprises.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["NodeType", "Node"]


class NodeType(enum.Enum):
    """The type ``γ(v)`` of an attack-tree node.

    ``BAS`` nodes are the leaves (basic attack steps); ``OR`` and ``AND``
    gates are internal nodes whose activation is the disjunction respectively
    conjunction of their children's activation.
    """

    BAS = "BAS"
    OR = "OR"
    AND = "AND"

    @property
    def is_gate(self) -> bool:
        """Return ``True`` for OR/AND gates, ``False`` for BAS leaves."""
        return self is not NodeType.BAS

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Node:
    """A single attack-tree node.

    Parameters
    ----------
    name:
        Unique identifier of the node within its tree.
    type:
        The node type ``γ(v)``.
    children:
        Names of the node's children, in declaration order.  Empty for BASs.
    label:
        Optional human-readable description (e.g. ``"force door"``).  Not
        used by any algorithm; preserved by serialization.
    """

    name: str
    type: NodeType
    children: Tuple[str, ...] = field(default_factory=tuple)
    label: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError("node name must be a non-empty string")
        if not isinstance(self.type, NodeType):
            raise TypeError(f"type must be a NodeType, got {self.type!r}")
        if self.type is NodeType.BAS and self.children:
            raise ValueError(
                f"BAS node {self.name!r} cannot have children {self.children!r}"
            )
        if self.type.is_gate and len(self.children) == 0:
            raise ValueError(f"gate node {self.name!r} must have at least one child")
        if len(set(self.children)) != len(self.children):
            raise ValueError(
                f"node {self.name!r} has duplicate children {self.children!r}"
            )
        if self.name in self.children:
            raise ValueError(f"node {self.name!r} cannot be its own child")

    @property
    def is_bas(self) -> bool:
        """Return ``True`` if this node is a basic attack step (leaf)."""
        return self.type is NodeType.BAS

    @property
    def is_gate(self) -> bool:
        """Return ``True`` if this node is an OR or AND gate."""
        return self.type.is_gate

    @property
    def arity(self) -> int:
        """Number of children."""
        return len(self.children)

    def with_children(self, children: Tuple[str, ...]) -> "Node":
        """Return a copy of this node with a different child tuple."""
        return Node(name=self.name, type=self.type, children=tuple(children),
                    label=self.label)

    def describe(self) -> str:
        """Return a one-line human-readable description of the node."""
        if self.is_bas:
            core = f"BAS {self.name}"
        else:
            core = f"{self.type.value}({', '.join(self.children)}) -> {self.name}"
        if self.label:
            core += f"  [{self.label}]"
        return core
