"""Interoperability with networkx.

Attack trees are rooted DAGs, so they map naturally onto
:class:`networkx.DiGraph`.  This module provides loss-less conversions in
both directions so that users can

* visualise trees with the networkx/graphviz ecosystem,
* compute generic graph statistics (diameter, degree distributions, …) on
  their models, and
* import models that were produced by other tools as annotated digraphs.

Node attributes used on the networkx side:

``type``
    ``"BAS"``, ``"OR"`` or ``"AND"``.
``label``
    The human-readable label (may be empty).
``cost`` / ``damage`` / ``probability``
    Present when the converted object carried the corresponding decoration.

Edges point from parent (gate) to child, matching the paper's edge set ``E``.
"""

from __future__ import annotations

from typing import Optional, Union

import networkx as nx

from .attributes import CostDamageAT, CostDamageProbAT
from .node import Node, NodeType
from .tree import AttackTree, AttackTreeError

__all__ = ["to_networkx", "from_networkx"]

Decorated = Union[AttackTree, CostDamageAT, CostDamageProbAT]


def to_networkx(model: Decorated) -> nx.DiGraph:
    """Convert a (decorated) attack tree into an annotated ``nx.DiGraph``.

    The graph carries ``graph["root"]`` so the conversion round-trips.
    """
    if isinstance(model, (CostDamageAT, CostDamageProbAT)):
        tree = model.tree
        cost = model.cost
        damage = model.damage
        probability = model.probability if isinstance(model, CostDamageProbAT) else None
    elif isinstance(model, AttackTree):
        tree, cost, damage, probability = model, None, None, None
    else:
        raise TypeError(f"cannot convert object of type {type(model).__name__}")

    graph = nx.DiGraph(root=tree.root)
    for name in tree.topological_order(reverse=True):
        node = tree.node(name)
        attributes = {"type": node.type.value, "label": node.label}
        if cost is not None and node.is_bas:
            attributes["cost"] = cost[name]
        if damage is not None:
            attributes["damage"] = damage.get(name, 0.0)
        if probability is not None and node.is_bas:
            attributes["probability"] = probability[name]
        graph.add_node(name, **attributes)
    graph.add_edges_from(tree.edges())
    return graph


def from_networkx(graph: nx.DiGraph, root: Optional[str] = None) -> Decorated:
    """Convert an annotated ``nx.DiGraph`` back into an attack tree.

    Every node must carry a ``type`` attribute; ``cost`` / ``damage`` /
    ``probability`` attributes, when present, reconstruct a cd-AT or cdp-AT.
    The root is taken from ``graph.graph["root"]`` unless passed explicitly.
    """
    if root is None:
        root = graph.graph.get("root")

    nodes = []
    cost = {}
    damage = {}
    probability = {}
    has_cost = has_damage = has_probability = False
    for name, attributes in graph.nodes(data=True):
        try:
            node_type = NodeType(attributes["type"])
        except (KeyError, ValueError) as exc:
            raise AttackTreeError(
                f"node {name!r} lacks a valid 'type' attribute: {exc}"
            ) from exc
        children = tuple(graph.successors(name))
        nodes.append(
            Node(name=name, type=node_type, children=children,
                 label=attributes.get("label", ""))
        )
        if "cost" in attributes:
            cost[name] = float(attributes["cost"])
            has_cost = True
        if "damage" in attributes and attributes["damage"]:
            damage[name] = float(attributes["damage"])
            has_damage = True
        if "probability" in attributes:
            probability[name] = float(attributes["probability"])
            has_probability = True

    tree = AttackTree(nodes, root=root)
    if has_probability:
        full_cost = {b: cost.get(b, 0.0) for b in tree.basic_attack_steps}
        full_probability = {b: probability.get(b, 1.0) for b in tree.basic_attack_steps}
        return CostDamageProbAT(tree, full_cost, damage, full_probability)
    if has_cost or has_damage:
        full_cost = {b: cost.get(b, 0.0) for b in tree.basic_attack_steps}
        return CostDamageAT(tree, full_cost, damage)
    return tree
