"""Structure-preserving transformations of decorated attack trees.

The paper (Section IV, Fig. 2) argues that *cost values on internal nodes*
can be simulated by adding a dummy BAS child that carries the cost, whereas
*damage values on internal nodes cannot* be pushed down without changing the
semantics.  :func:`push_internal_costs` implements the former rewrite, so
that models authored with internal costs can be analysed with this library's
(paper-faithful) "costs only on BASs" convention.

Other transformations provided here are conveniences used by the experiment
harness and by tests:

* :func:`relabel` — renames nodes consistently across tree and decorations;
* :func:`merge_trees` — the three random-AT combination operations of
  Section X.D live in :mod:`repro.attacktree.random_gen`, but the low-level
  "graft one tree onto another" splice is implemented here;
* :func:`strip_probabilities` / :func:`with_unit_probabilities` — move
  between the deterministic and probabilistic views.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from .attributes import CostDamageAT, CostDamageProbAT
from .node import Node, NodeType
from .tree import AttackTree, AttackTreeError

__all__ = [
    "push_internal_costs",
    "relabel",
    "replace_bas_with_tree",
    "strip_probabilities",
    "with_unit_probabilities",
]

_DUMMY_SUFFIX = "__cost"


def push_internal_costs(
    tree: AttackTree,
    cost: Mapping[str, float],
    damage: Mapping[str, float],
    probability: Optional[Mapping[str, float]] = None,
) -> CostDamageProbAT:
    """Rewrite internal-node costs into dummy BAS children (Fig. 2, middle).

    Parameters
    ----------
    tree:
        The attack tree.  Unlike :class:`CostDamageAT`, the ``cost`` mapping
        here *may* assign costs to internal nodes; this function removes them.
    cost:
        Cost map that may include internal nodes.
    damage:
        Damage map over any subset of nodes.
    probability:
        Optional success probabilities for the original BASs.  Dummy BASs
        introduced by the rewrite succeed with probability 1 (they model a
        resource payment, not an uncertain action).

    Returns
    -------
    CostDamageProbAT
        A cdp-AT in which only BASs carry costs.  An internal node ``v``
        with cost ``k`` becomes ``AND(v_orig, v__cost)`` where ``v__cost``
        is a fresh BAS with cost ``k``... more precisely, since the paper's
        convention is that the internal node is only activated if its cost
        is paid, we add the dummy BAS as an extra child of the gate itself
        (an AND gate gets one more conjunct; an OR gate ``v`` is wrapped as
        ``AND(v_inner, dummy)`` so the payment is still required).
    """
    internal_costs = {
        name: float(value)
        for name, value in cost.items()
        if name in tree.nodes and tree.node(name).is_gate and float(value) > 0
    }
    bas_costs = {
        name: float(value)
        for name, value in cost.items()
        if name in tree.basic_attack_steps
    }
    unknown = set(cost) - set(tree.nodes)
    if unknown:
        raise AttackTreeError(f"cost map references unknown nodes: {sorted(unknown)!r}")

    existing = set(tree.nodes)
    new_nodes: Dict[str, Node] = {}
    new_damage: Dict[str, float] = {
        n: float(damage.get(n, 0.0)) for n in tree.node_names
    }
    new_probability: Dict[str, float] = {}
    if probability is not None:
        new_probability.update({b: float(p) for b, p in probability.items()})

    for name in tree.node_names:
        node = tree.node(name)
        if name not in internal_costs:
            new_nodes[name] = node
            continue
        dummy = name + _DUMMY_SUFFIX
        while dummy in existing:
            dummy += "_"
        existing.add(dummy)
        bas_costs[dummy] = internal_costs[name]
        new_probability[dummy] = 1.0
        new_nodes[dummy] = Node(
            name=dummy,
            type=NodeType.BAS,
            label=f"cost payment for {name}",
        )
        if node.type is NodeType.AND:
            # The payment is just one more conjunct of the AND gate.
            new_nodes[name] = node.with_children(node.children + (dummy,))
        else:
            # Wrap the OR gate: v = AND(v__inner, dummy).  The inner OR keeps
            # the original children; the outer AND inherits the name and
            # damage so that parents and the damage semantics are unchanged.
            inner = name + "__inner"
            while inner in existing:
                inner += "_"
            existing.add(inner)
            new_nodes[inner] = Node(
                name=inner,
                type=NodeType.OR,
                children=node.children,
                label=f"disjunction of {name}",
            )
            new_damage[inner] = 0.0
            new_nodes[name] = Node(
                name=name,
                type=NodeType.AND,
                children=(inner, dummy),
                label=node.label,
            )

    new_tree = AttackTree(new_nodes.values(), root=tree.root)
    full_probability = {
        b: new_probability.get(b, 1.0) for b in new_tree.basic_attack_steps
    }
    full_cost = {b: bas_costs.get(b, 0.0) for b in new_tree.basic_attack_steps}
    return CostDamageProbAT(new_tree, full_cost, new_damage, full_probability)


def relabel(cdat: CostDamageAT, mapping: Mapping[str, str]) -> CostDamageAT:
    """Rename nodes of a cd-AT according to ``mapping``.

    Names not present in ``mapping`` are kept; the mapping must be injective
    on the tree's node set.
    """
    def rename(name: str) -> str:
        return mapping.get(name, name)

    new_names = [rename(n) for n in cdat.tree.node_names]
    if len(set(new_names)) != len(new_names):
        raise AttackTreeError("relabelling is not injective on the node set")

    nodes = [
        Node(
            name=rename(node.name),
            type=node.type,
            children=tuple(rename(c) for c in node.children),
            label=node.label,
        )
        for node in cdat.tree.nodes.values()
    ]
    tree = AttackTree(nodes, root=rename(cdat.tree.root))
    cost = {rename(b): v for b, v in cdat.cost.items()}
    damage = {rename(n): v for n, v in cdat.damage.items()}
    return CostDamageAT(tree, cost, damage)


def replace_bas_with_tree(
    host: AttackTree,
    bas: str,
    guest: AttackTree,
    prefix: str = "",
) -> AttackTree:
    """Replace a BAS of ``host`` by the root of ``guest`` (combination op. 1).

    This is the splice underlying the first random-AT combination method of
    Section X.D: "take a random BAS from the first AT and replace it with
    the root of the second AT, thus joining the two ATs".

    Parameters
    ----------
    host:
        Tree containing the BAS to replace.
    bas:
        Name of the BAS to replace.
    guest:
        Tree whose root takes the BAS's place.
    prefix:
        Prefix applied to every guest node name to avoid clashes with host
        names.  If a prefixed guest name still clashes, an error is raised.

    Returns
    -------
    AttackTree
        The combined tree.  The replaced BAS name disappears; parents that
        referenced it now reference ``prefix + guest.root``.
    """
    if bas not in host.basic_attack_steps:
        raise AttackTreeError(f"{bas!r} is not a BAS of the host tree")

    guest_names = {n: prefix + n for n in guest.nodes}
    clashes = set(guest_names.values()) & (set(host.nodes) - {bas})
    if clashes:
        raise AttackTreeError(
            f"guest node names clash with host names: {sorted(clashes)!r}; "
            "pass a distinguishing prefix"
        )

    new_nodes: Dict[str, Node] = {}
    guest_root = guest_names[guest.root]
    for node in host.nodes.values():
        if node.name == bas:
            continue  # the BAS is replaced by the guest root
        children = tuple(guest_root if c == bas else c for c in node.children)
        new_nodes[node.name] = node.with_children(children) if node.is_gate else node
    for node in guest.nodes.values():
        renamed = Node(
            name=guest_names[node.name],
            type=node.type,
            children=tuple(guest_names[c] for c in node.children),
            label=node.label,
        )
        new_nodes[renamed.name] = renamed

    return AttackTree(new_nodes.values(), root=host.root)


def strip_probabilities(cdpat: CostDamageProbAT) -> CostDamageAT:
    """Return the deterministic cd-AT underlying a cdp-AT."""
    return cdpat.deterministic()


def with_unit_probabilities(cdat: CostDamageAT) -> CostDamageProbAT:
    """View a cd-AT as a cdp-AT in which every BAS succeeds surely.

    The paper's appendix uses exactly this embedding to derive the
    deterministic theorems from the probabilistic ones.
    """
    return CostDamageProbAT(
        cdat.tree,
        dict(cdat.cost),
        dict(cdat.damage),
        {b: 1.0 for b in cdat.tree.basic_attack_steps},
    )
