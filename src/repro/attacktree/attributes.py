"""Attribute decorations: cd-ATs and cdp-ATs.

The paper attaches a *damage* value ``d(v) ≥ 0`` to every node, a *cost*
value ``c(v) ≥ 0`` to every BAS, and — in the probabilistic setting — a
success probability ``p(v) ∈ [0, 1]`` to every BAS (Definitions 4 and 5).

:class:`CostDamageAT` bundles an :class:`~repro.attacktree.tree.AttackTree`
with cost and damage maps (a *cd-AT*); :class:`CostDamageProbAT` adds the
probability map (a *cdp-AT*).  Both validate their decorations eagerly so
that algorithms can assume totality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional

from .tree import AttackTree

__all__ = ["CostDamageAT", "CostDamageProbAT", "AttributeError_", "validate_cost_map",
           "validate_damage_map", "validate_probability_map"]


class AttributeError_(ValueError):
    """Raised when a cost/damage/probability decoration is invalid.

    The trailing underscore avoids shadowing the built-in ``AttributeError``.
    """


def validate_cost_map(tree: AttackTree, cost: Mapping[str, float]) -> Dict[str, float]:
    """Validate a cost map ``c : B -> R≥0`` and return a defensive copy.

    Every BAS must be assigned a finite non-negative cost; non-BAS keys are
    rejected (the paper explicitly restricts costs to BASs — internal costs
    are modelled via dummy BASs, see :mod:`repro.attacktree.transform`).
    """
    result: Dict[str, float] = {}
    bas = tree.basic_attack_steps
    extra = set(cost) - set(bas)
    if extra:
        raise AttributeError_(
            f"cost map assigns costs to non-BAS nodes: {sorted(extra)!r}; "
            "use transform.push_internal_costs to model internal costs"
        )
    missing = set(bas) - set(cost)
    if missing:
        raise AttributeError_(f"cost map is missing BASs: {sorted(missing)!r}")
    for name in bas:
        value = float(cost[name])
        if not math.isfinite(value) or value < 0:
            raise AttributeError_(
                f"cost of BAS {name!r} must be a finite non-negative number, got {value!r}"
            )
        result[name] = value
    return result


def validate_damage_map(tree: AttackTree, damage: Mapping[str, float]) -> Dict[str, float]:
    """Validate a damage map ``d : N -> R≥0`` and return a total copy.

    Nodes missing from the map default to damage ``0``; unknown keys are an
    error, negative or non-finite values are an error.
    """
    unknown = set(damage) - set(tree.nodes)
    if unknown:
        raise AttributeError_(f"damage map references unknown nodes: {sorted(unknown)!r}")
    result: Dict[str, float] = {}
    for name in tree.node_names:
        value = float(damage.get(name, 0.0))
        if not math.isfinite(value) or value < 0:
            raise AttributeError_(
                f"damage of node {name!r} must be a finite non-negative number, got {value!r}"
            )
        result[name] = value
    return result


def validate_probability_map(
    tree: AttackTree, probability: Mapping[str, float]
) -> Dict[str, float]:
    """Validate a probability map ``p : B -> [0, 1]`` and return a copy."""
    bas = tree.basic_attack_steps
    extra = set(probability) - set(bas)
    if extra:
        raise AttributeError_(
            f"probability map assigns values to non-BAS nodes: {sorted(extra)!r}"
        )
    missing = set(bas) - set(probability)
    if missing:
        raise AttributeError_(f"probability map is missing BASs: {sorted(missing)!r}")
    result: Dict[str, float] = {}
    for name in bas:
        value = float(probability[name])
        if not (0.0 <= value <= 1.0):
            raise AttributeError_(
                f"success probability of BAS {name!r} must lie in [0, 1], got {value!r}"
            )
        result[name] = value
    return result


@dataclass(frozen=True)
class CostDamageAT:
    """A cd-AT: an attack tree with cost and damage decorations.

    Attributes
    ----------
    tree:
        The underlying attack tree.
    cost:
        Cost map over the BASs (``c`` in the paper).
    damage:
        Damage map over all nodes (``d`` in the paper); nodes absent from the
        constructor argument carry damage ``0``.
    """

    tree: AttackTree
    cost: Mapping[str, float]
    damage: Mapping[str, float]

    def __init__(
        self,
        tree: AttackTree,
        cost: Mapping[str, float],
        damage: Optional[Mapping[str, float]] = None,
    ) -> None:
        object.__setattr__(self, "tree", tree)
        object.__setattr__(self, "cost", validate_cost_map(tree, cost))
        object.__setattr__(self, "damage", validate_damage_map(tree, damage or {}))

    # -- convenience accessors ----------------------------------------- #
    @property
    def basic_attack_steps(self) -> FrozenSet[str]:
        """The BAS set ``B`` of the underlying tree."""
        return self.tree.basic_attack_steps

    @property
    def root(self) -> str:
        """The root node name ``R_T``."""
        return self.tree.root

    def cost_of(self, bas: str) -> float:
        """Return ``c(v)`` for a BAS."""
        try:
            return self.cost[bas]
        except KeyError:
            raise KeyError(f"{bas!r} is not a BAS of this cd-AT") from None

    def damage_of(self, node: str) -> float:
        """Return ``d(v)`` for any node."""
        try:
            return self.damage[node]
        except KeyError:
            raise KeyError(f"{node!r} is not a node of this cd-AT") from None

    def total_cost_upper_bound(self) -> float:
        """Return the cost of activating every BAS (an upper bound on ĉ)."""
        return sum(self.cost.values())

    def total_damage_upper_bound(self) -> float:
        """Return the sum of all damage values (an upper bound on d̂)."""
        return sum(self.damage.values())

    def with_probabilities(self, probability: Mapping[str, float]) -> "CostDamageProbAT":
        """Extend this cd-AT into a cdp-AT with the given success probabilities."""
        return CostDamageProbAT(self.tree, self.cost, self.damage, probability)

    def restricted_to(self, node: str) -> "CostDamageAT":
        """Return the cd-AT induced on the sub-DAG rooted at ``node``.

        Costs and damages are restricted to the nodes of the sub-DAG; this is
        the decorated version of ``T_v`` used throughout the bottom-up proofs.
        """
        subtree = self.tree.subtree(node)
        sub_cost = {b: self.cost[b] for b in subtree.basic_attack_steps}
        sub_damage = {n: self.damage[n] for n in subtree.node_names}
        return CostDamageAT(subtree, sub_cost, sub_damage)

    def describe(self) -> str:
        """Return a multi-line summary of the decoration."""
        lines = [repr(self.tree)]
        for name in self.tree.topological_order(reverse=True):
            node = self.tree.node(name)
            parts = [node.describe(), f"d={self.damage[name]:g}"]
            if node.is_bas:
                parts.append(f"c={self.cost[name]:g}")
            lines.append("  " + "  ".join(parts))
        return "\n".join(lines)


@dataclass(frozen=True)
class CostDamageProbAT:
    """A cdp-AT: a cd-AT whose BASs additionally carry success probabilities."""

    tree: AttackTree
    cost: Mapping[str, float]
    damage: Mapping[str, float]
    probability: Mapping[str, float]

    def __init__(
        self,
        tree: AttackTree,
        cost: Mapping[str, float],
        damage: Optional[Mapping[str, float]] = None,
        probability: Optional[Mapping[str, float]] = None,
    ) -> None:
        object.__setattr__(self, "tree", tree)
        object.__setattr__(self, "cost", validate_cost_map(tree, cost))
        object.__setattr__(self, "damage", validate_damage_map(tree, damage or {}))
        if probability is None:
            probability = {b: 1.0 for b in tree.basic_attack_steps}
        object.__setattr__(
            self, "probability", validate_probability_map(tree, probability)
        )

    @property
    def basic_attack_steps(self) -> FrozenSet[str]:
        """The BAS set ``B`` of the underlying tree."""
        return self.tree.basic_attack_steps

    @property
    def root(self) -> str:
        """The root node name ``R_T``."""
        return self.tree.root

    def cost_of(self, bas: str) -> float:
        """Return ``c(v)`` for a BAS."""
        try:
            return self.cost[bas]
        except KeyError:
            raise KeyError(f"{bas!r} is not a BAS of this cdp-AT") from None

    def damage_of(self, node: str) -> float:
        """Return ``d(v)`` for any node."""
        try:
            return self.damage[node]
        except KeyError:
            raise KeyError(f"{node!r} is not a node of this cdp-AT") from None

    def probability_of(self, bas: str) -> float:
        """Return ``p(v)`` for a BAS."""
        try:
            return self.probability[bas]
        except KeyError:
            raise KeyError(f"{bas!r} is not a BAS of this cdp-AT") from None

    def deterministic(self) -> CostDamageAT:
        """Drop the probability decoration, returning the underlying cd-AT."""
        return CostDamageAT(self.tree, self.cost, self.damage)

    def is_effectively_deterministic(self, tolerance: float = 0.0) -> bool:
        """Return ``True`` when every BAS succeeds with probability ≈ 1."""
        return all(p >= 1.0 - tolerance for p in self.probability.values())

    def restricted_to(self, node: str) -> "CostDamageProbAT":
        """Return the cdp-AT induced on the sub-DAG rooted at ``node``."""
        subtree = self.tree.subtree(node)
        sub_cost = {b: self.cost[b] for b in subtree.basic_attack_steps}
        sub_damage = {n: self.damage[n] for n in subtree.node_names}
        sub_prob = {b: self.probability[b] for b in subtree.basic_attack_steps}
        return CostDamageProbAT(subtree, sub_cost, sub_damage, sub_prob)

    def describe(self) -> str:
        """Return a multi-line summary of the decoration."""
        lines = [repr(self.tree)]
        for name in self.tree.topological_order(reverse=True):
            node = self.tree.node(name)
            parts = [node.describe(), f"d={self.damage[name]:g}"]
            if node.is_bas:
                parts.append(f"c={self.cost[name]:g}")
                parts.append(f"p={self.probability[name]:g}")
            lines.append("  " + "  ".join(parts))
        return "\n".join(lines)
