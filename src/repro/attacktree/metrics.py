"""Classic single-metric attack-tree analyses.

The related-work section of the paper situates cost-damage analysis among
established single-metric AT analyses: minimal attacks (cut sets), the
minimal cost of a *successful* attack, the probability that the top event is
reached, and so on.  A practical library needs those too — both for their
own sake and because the case-study discussions compare against them (e.g.
"only A2 would have been found by a minimal attack analysis", Section X.B).

All functions here are exact.  For treelike ATs they run bottom-up in linear
or near-linear time; for DAG-like ATs the cost/probability functions fall
back to the ILP substrate or exact enumeration where necessary, with the
same Table I-style dispatch as the cost-damage solvers.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..milp.highs import default_solver
from ..milp.model import ConstraintSense, LinearExpression
from ..milp.solution import SolveStatus
from .attributes import CostDamageAT, CostDamageProbAT
from .node import NodeType
from .tree import AttackTree

__all__ = [
    "minimal_attacks",
    "is_minimal_attack",
    "min_cost_of_successful_attack",
    "max_probability_of_success",
    "success_probability_all_attempted",
    "count_successful_attacks",
]


def minimal_attacks(tree: AttackTree, max_count: Optional[int] = None) -> List[FrozenSet[str]]:
    """Enumerate the minimal successful attacks (minimal cut sets).

    A successful attack is minimal when no proper subset is still successful.
    For treelike ATs the standard bottom-up product/union construction is
    used; for DAG-like ATs the same recursion runs on the DAG followed by a
    minimality filter (shared BASs can make intermediate sets non-minimal).

    Parameters
    ----------
    tree:
        The attack tree.
    max_count:
        Optional safety cap; enumeration stops with a ``ValueError`` when the
        number of minimal attacks exceeds it (their number can be exponential).
    """
    suites: Dict[str, List[FrozenSet[str]]] = {}
    for name in tree.node_names:  # children before parents
        node = tree.node(name)
        if node.is_bas:
            suites[name] = [frozenset({name})]
        elif node.type is NodeType.OR:
            merged: List[FrozenSet[str]] = []
            for child in node.children:
                merged.extend(suites[child])
            suites[name] = _minimal_sets(merged)
        else:  # AND
            combined = [frozenset()]
            for child in node.children:
                combined = [
                    existing | addition
                    for existing in combined
                    for addition in suites[child]
                ]
                combined = _minimal_sets(combined)
                if max_count is not None and len(combined) > max_count:
                    raise ValueError(
                        f"more than {max_count} minimal attacks at node {name!r}"
                    )
            suites[name] = combined
        if max_count is not None and len(suites[name]) > max_count:
            raise ValueError(f"more than {max_count} minimal attacks at node {name!r}")
    return sorted(suites[tree.root], key=lambda attack: (len(attack), sorted(attack)))


def _minimal_sets(sets: List[FrozenSet[str]]) -> List[FrozenSet[str]]:
    """Drop supersets (and duplicates) from a list of BAS sets."""
    unique = sorted(set(sets), key=len)
    result: List[FrozenSet[str]] = []
    for candidate in unique:
        if not any(kept <= candidate for kept in result):
            result.append(candidate)
    return result


def is_minimal_attack(tree: AttackTree, attack: FrozenSet[str]) -> bool:
    """Return ``True`` when ``attack`` is successful and no proper subset is."""
    if not tree.is_successful(attack):
        return False
    return all(
        not tree.is_successful(attack - {bas})
        for bas in attack
    )


def min_cost_of_successful_attack(
    cdat: CostDamageAT | CostDamageProbAT,
) -> Tuple[Optional[float], Optional[FrozenSet[str]]]:
    """The classic "min cost" metric: cheapest attack reaching the root.

    Uses a single-objective ILP over the Theorem 6 constraint system with the
    extra constraint ``y_root = 1``; this works uniformly for treelike and
    DAG-like ATs.  Returns ``(None, None)`` if the root is unreachable (which
    cannot happen for well-formed ATs, but guards against degenerate models).
    """
    from ..core.bilp import build_structure_program, cost_objective

    deterministic = cdat.deterministic() if isinstance(cdat, CostDamageProbAT) else cdat
    program = build_structure_program(deterministic, name="min-cost-success")
    program.add_constraint(
        LinearExpression({f"y:{deterministic.tree.root}": 1.0}),
        ConstraintSense.GREATER_EQUAL,
        1.0,
        name="root-reached",
    )
    solution = default_solver().solve(program, cost_objective(deterministic))
    if solution.status is not SolveStatus.OPTIMAL:
        return None, None
    attack = frozenset(
        bas
        for bas in deterministic.tree.basic_attack_steps
        if solution.value(f"y:{bas}") > 0.5
    )
    # Reported cost is recomputed exactly from the witness.
    cost = sum(deterministic.cost[bas] for bas in attack)
    return cost, attack


def success_probability_all_attempted(cdpat: CostDamageProbAT) -> float:
    """Probability that the root is reached when *every* BAS is attempted.

    For treelike ATs this is the classic fault-tree-style bottom-up
    evaluation; for DAG-like ATs the exact value is computed by enumerating
    actualizations (exponential — intended for the case-study sizes).
    """
    from ..probability.actualization import reach_probabilities

    full_attack = frozenset(cdpat.tree.basic_attack_steps)
    return reach_probabilities(cdpat, full_attack)[cdpat.tree.root]


def max_probability_of_success(
    cdpat: CostDamageProbAT, budget: float = math.inf
) -> Tuple[float, Optional[FrozenSet[str]]]:
    """The largest root-reaching probability achievable within a cost budget.

    Without a budget this equals :func:`success_probability_all_attempted`
    (attempting more BASs never hurts).  With a budget, for treelike ATs the
    probabilistic bottom-up machinery is reused with the node's own damage
    ignored and the root's reach probability as the objective, by running the
    standard solver on a copy whose only damage is 1 on the root.
    """
    tree = cdpat.tree
    if math.isinf(budget):
        return success_probability_all_attempted(cdpat), frozenset(tree.basic_attack_steps)
    probability_model = CostDamageProbAT(
        tree,
        dict(cdpat.cost),
        {tree.root: 1.0},
        dict(cdpat.probability),
    )
    if tree.is_treelike:
        from ..core.bottom_up_prob import max_expected_damage_given_cost_treelike

        value, witness = max_expected_damage_given_cost_treelike(probability_model, budget)
        return value, witness
    from ..extensions.prob_dag import max_expected_damage_exact

    return max_expected_damage_exact(probability_model, budget)


def count_successful_attacks(tree: AttackTree, max_bas: int = 20) -> int:
    """Count attacks that reach the root (exact, exponential enumeration)."""
    bas = sorted(tree.basic_attack_steps)
    if len(bas) > max_bas:
        raise ValueError(
            f"counting successful attacks enumerates 2^{len(bas)} sets; "
            f"limit is 2^{max_bas}"
        )
    count = 0
    for size in range(len(bas) + 1):
        for combo in itertools.combinations(bas, size):
            if tree.is_successful(frozenset(combo)):
                count += 1
    return count
