"""Fluent construction of (decorated) attack trees.

:class:`AttackTreeBuilder` lets callers declare nodes one by one — in any
order — together with their cost/damage/probability decorations, and then
produce an immutable :class:`~repro.attacktree.tree.AttackTree`,
:class:`~repro.attacktree.attributes.CostDamageAT` or
:class:`~repro.attacktree.attributes.CostDamageProbAT`.

Example
-------
The running example of the paper (Fig. 1) is written as::

    builder = AttackTreeBuilder()
    builder.bas("ca", cost=1, label="cyberattack")
    builder.bas("pb", cost=3, label="place bomb")
    builder.bas("fd", cost=2, damage=10, label="force door")
    builder.and_gate("dr", ["pb", "fd"], damage=100, label="destroy robot")
    builder.or_gate("ps", ["ca", "dr"], damage=200, label="production shutdown")
    cdat = builder.build_cd(root="ps")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .attributes import CostDamageAT, CostDamageProbAT
from .node import Node, NodeType
from .tree import AttackTree, AttackTreeError

__all__ = ["AttackTreeBuilder"]


class AttackTreeBuilder:
    """Incrementally assemble an attack tree and its decorations."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Node] = {}
        self._cost: Dict[str, float] = {}
        self._damage: Dict[str, float] = {}
        self._probability: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # node declaration
    # ------------------------------------------------------------------ #
    def bas(
        self,
        name: str,
        *,
        cost: float = 0.0,
        damage: float = 0.0,
        probability: Optional[float] = None,
        label: str = "",
    ) -> "AttackTreeBuilder":
        """Declare a basic attack step.

        Parameters
        ----------
        name:
            Unique node name.
        cost:
            Activation cost ``c(v)`` (defaults to 0).
        damage:
            Damage ``d(v)`` done when the BAS itself is reached (defaults to 0).
        probability:
            Success probability ``p(v)``; only meaningful when building a
            cdp-AT.  ``None`` means "not specified" and defaults to 1 at
            build time.
        label:
            Optional human-readable description.
        """
        self._register(Node(name=name, type=NodeType.BAS, label=label))
        self._cost[name] = float(cost)
        if damage:
            self._damage[name] = float(damage)
        if probability is not None:
            self._probability[name] = float(probability)
        return self

    def or_gate(
        self,
        name: str,
        children: Sequence[str],
        *,
        damage: float = 0.0,
        label: str = "",
    ) -> "AttackTreeBuilder":
        """Declare an OR gate over the given children."""
        self._register(
            Node(name=name, type=NodeType.OR, children=tuple(children), label=label)
        )
        if damage:
            self._damage[name] = float(damage)
        return self

    def and_gate(
        self,
        name: str,
        children: Sequence[str],
        *,
        damage: float = 0.0,
        label: str = "",
    ) -> "AttackTreeBuilder":
        """Declare an AND gate over the given children."""
        self._register(
            Node(name=name, type=NodeType.AND, children=tuple(children), label=label)
        )
        if damage:
            self._damage[name] = float(damage)
        return self

    def gate(
        self,
        name: str,
        type_: NodeType,
        children: Sequence[str],
        *,
        damage: float = 0.0,
        label: str = "",
    ) -> "AttackTreeBuilder":
        """Declare a gate whose type is chosen at run time."""
        if type_ is NodeType.OR:
            return self.or_gate(name, children, damage=damage, label=label)
        if type_ is NodeType.AND:
            return self.and_gate(name, children, damage=damage, label=label)
        raise ValueError(f"gate type must be OR or AND, got {type_!r}")

    def set_damage(self, name: str, damage: float) -> "AttackTreeBuilder":
        """Assign (or overwrite) the damage of an already-declared node."""
        if name not in self._nodes:
            raise KeyError(f"node {name!r} has not been declared")
        self._damage[name] = float(damage)
        return self

    def set_cost(self, name: str, cost: float) -> "AttackTreeBuilder":
        """Assign (or overwrite) the cost of an already-declared BAS."""
        if name not in self._nodes:
            raise KeyError(f"node {name!r} has not been declared")
        if not self._nodes[name].is_bas:
            raise ValueError(f"node {name!r} is not a BAS; only BASs carry costs")
        self._cost[name] = float(cost)
        return self

    def set_probability(self, name: str, probability: float) -> "AttackTreeBuilder":
        """Assign (or overwrite) the success probability of a declared BAS."""
        if name not in self._nodes:
            raise KeyError(f"node {name!r} has not been declared")
        if not self._nodes[name].is_bas:
            raise ValueError(f"node {name!r} is not a BAS; only BASs carry probabilities")
        self._probability[name] = float(probability)
        return self

    def _register(self, node: Node) -> None:
        if node.name in self._nodes:
            raise AttackTreeError(f"node {node.name!r} declared twice")
        self._nodes[node.name] = node

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    @property
    def declared_nodes(self) -> List[str]:
        """Names declared so far (in declaration order)."""
        return list(self._nodes)

    def build_tree(self, root: Optional[str] = None) -> AttackTree:
        """Build the bare :class:`AttackTree` (no decorations)."""
        return AttackTree(self._nodes.values(), root=root)

    def build_cd(self, root: Optional[str] = None) -> CostDamageAT:
        """Build a cd-AT from the declared nodes, costs and damages."""
        tree = self.build_tree(root)
        cost = {b: self._cost.get(b, 0.0) for b in tree.basic_attack_steps}
        return CostDamageAT(tree, cost, dict(self._damage))

    def build_cdp(self, root: Optional[str] = None) -> CostDamageProbAT:
        """Build a cdp-AT; BASs without an explicit probability default to 1."""
        tree = self.build_tree(root)
        cost = {b: self._cost.get(b, 0.0) for b in tree.basic_attack_steps}
        probability = {
            b: self._probability.get(b, 1.0) for b in tree.basic_attack_steps
        }
        return CostDamageProbAT(tree, cost, dict(self._damage), probability)
