"""Catalogue of attack trees used in the paper's evaluation.

The paper's experiments (Section X) run on:

* the **factory** running example (Fig. 1) — 6 nodes, treelike;
* the **giant-panda IoT sensor network** (Fig. 4, from Jiang et al. [22]) —
  22 BASs, treelike;
* the **data server behind a firewall** (Fig. 5, from Dewri et al. [23]) —
  12 BASs, DAG-like;
* a set of **literature building-block ATs** (Table IV) that the random-AT
  generator of Section X.D combines into larger trees.

The Fig. 4 and Fig. 5 trees are reconstructed from the published figures and,
where the figure scan is ambiguous, from the published Pareto fronts of
Fig. 6: the decorations below reproduce the cost/damage coordinates of every
Pareto-optimal attack reported in the paper (see ``EXPERIMENTS.md``).  The
Table IV building blocks are not reproduced node-for-node (the original
papers' figures are not part of this artifact); instead
:func:`building_blocks` returns synthetic ATs with the same sizes and
treelike-ness, which is all the random-generation procedure uses.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .attributes import CostDamageAT, CostDamageProbAT
from .builder import AttackTreeBuilder
from .node import NodeType
from .tree import AttackTree

__all__ = [
    "factory",
    "factory_probabilistic",
    "panda_iot",
    "data_server",
    "building_blocks",
    "example10_or_pair",
    "knapsack_like_chain",
]


def factory() -> CostDamageAT:
    """The running example of the paper (Fig. 1).

    Production can be shut down by a cyberattack or by destroying the
    production robot (forcing the door and placing a bomb).  Damage values
    are in 1000 USD.

    The cost-damage Pareto front is
    ``{(0, 0), (1, 200), (3, 210), (5, 310)}`` (Example 2 / Fig. 3).
    """
    builder = AttackTreeBuilder()
    builder.bas("ca", cost=1, label="cyberattack")
    builder.bas("pb", cost=3, label="place bomb")
    builder.bas("fd", cost=2, damage=10, label="force door")
    builder.and_gate("dr", ["pb", "fd"], damage=100, label="destroy robot")
    builder.or_gate("ps", ["ca", "dr"], damage=200, label="production shutdown")
    return builder.build_cd(root="ps")


def factory_probabilistic() -> CostDamageProbAT:
    """The factory example extended with the probabilities of Example 8.

    ``p(ca) = 0.2``, ``p(pb) = 0.4``, ``p(fd) = 0.9``; Example 9 computes
    ``d̂_E(0, 1, 1) = 112``.
    """
    return factory().with_probabilities({"ca": 0.2, "pb": 0.4, "fd": 0.9})


def panda_iot() -> CostDamageProbAT:
    """Privacy attacks on a giant-panda IoT monitoring system (Fig. 4).

    22 BASs, 16 gates, treelike.  Costs are unitless 1–5 values; success
    probabilities 0.1–0.9; damages in million USD concentrate on internal
    nodes (location info purchased, base station compromised, …) while the
    top event carries only 5.

    The deterministic Pareto front of this decoration is exactly the one of
    Fig. 6a:

    ==========  =====  =======
    attack      cost   damage
    ==========  =====  =======
    {b18}          3      20
    {b19,b20}      4      50
    A1 ∪ A2        7      65
    + {b1,b3}     11      75
    + {b7,b8}     13      80
    A4 ∪ A5       17      90
    + {b4,b5}     22      95
    + {b11..13}   30     100
    ==========  =====  =======
    """
    builder = AttackTreeBuilder()
    # --- basic attack steps (number, cost, success probability) ---------- #
    builder.bas("b1", cost=1, probability=0.5, label="obtain messages")
    builder.bas("b2", cost=4, probability=0.5, label="analytical reasoning")
    builder.bas("b3", cost=3, probability=0.3, label="brute force")
    builder.bas("b4", cost=2, probability=0.5, label="look for nodes")
    builder.bas("b5", cost=3, probability=0.5, label="crack security")
    builder.bas("b6", cost=2, probability=0.7, label="search information")
    builder.bas("b7", cost=4, probability=0.9, label="high-monitor equipment")
    builder.bas("b8", cost=2, probability=0.7, label="physical layer")
    builder.bas("b9", cost=3, probability=0.7, label="MAC layer")
    builder.bas("b10", cost=3, probability=0.7, label="appliance layer")
    builder.bas("b11", cost=2, probability=0.9, label="compute local location info")
    builder.bas("b12", cost=3, probability=0.9, label="group monitor equipment")
    builder.bas("b13", cost=3, probability=0.9, label="traffic information collection")
    builder.bas("b14", cost=2, probability=0.7, label="analyze collected information")
    builder.bas("b15", cost=1, probability=0.7, label="find base station")
    builder.bas("b16", cost=3, probability=0.5, label="follow hop-by-hop")
    builder.bas("b17", cost=4, probability=0.1, label="purchase from 3rd party")
    builder.bas("b18", cost=3, probability=0.9, label="internal leakage")
    builder.bas("b19", cost=1, probability=0.7, label="look for base station")
    builder.bas("b20", cost=3, probability=0.3, label="crack password")
    builder.bas("b21", cost=1, probability=0.3, label="send malicious codes to base station")
    builder.bas("b22", cost=3, probability=0.3, label="malicious codes ran")

    # --- message-deciphering branch -------------------------------------- #
    builder.or_gate("password_cracked", ["b2", "b3"], label="password cracked")
    builder.and_gate("messages_deciphered", ["b1", "password_cracked"], damage=10,
                     label="messages deciphered")
    # --- node-compromise branch ------------------------------------------ #
    builder.and_gate("node_compromised", ["b4", "b5"], damage=5,
                     label="node compromised")
    builder.and_gate("info_through_node", ["node_compromised", "b6"],
                     label="info obtained through node")
    builder.or_gate("location_info_captured", ["messages_deciphered", "info_through_node"],
                    label="location info captured")
    # --- global eavesdropping branch -------------------------------------- #
    builder.or_gate("global_traffic_collection", ["b8", "b9", "b10"],
                    label="global traffic info collection")
    builder.and_gate("global_info_compromised", ["b7", "global_traffic_collection"],
                     damage=15, label="global info compromised")
    builder.and_gate("global_eavesdropping", ["global_info_compromised", "b14"],
                     label="global eavesdropping")
    # --- group and local eavesdropping ------------------------------------ #
    builder.and_gate("group_eavesdropping", ["b11", "b12", "b13"], damage=5,
                     label="group eavesdropping")
    builder.and_gate("local_eavesdropping", ["b15", "b16"],
                     label="local eavesdropping")
    builder.or_gate(
        "location_info_eavesdropped",
        ["location_info_captured", "global_eavesdropping",
         "group_eavesdropping", "local_eavesdropping"],
        label="location info eavesdropped",
    )
    # --- base-station compromise ------------------------------------------ #
    builder.and_gate("physical_theft", ["b19", "b20"], label="physical theft")
    builder.and_gate("code_theft", ["b21", "b22"], label="code theft")
    builder.or_gate("base_station_compromised", ["physical_theft", "code_theft"],
                    damage=45, label="base station compromised")
    # --- purchased information --------------------------------------------- #
    builder.or_gate("location_info_purchased", ["b17", "b18"], damage=15,
                    label="location info purchased")
    # --- top event ---------------------------------------------------------- #
    builder.or_gate(
        "location_privacy_leakage",
        ["location_info_eavesdropped", "base_station_compromised",
         "location_info_purchased"],
        damage=5,
        label="location privacy leakage",
    )
    return builder.build_cdp(root="location_privacy_leakage")


def data_server() -> CostDamageAT:
    """Attacks on a data server on a network behind a firewall (Fig. 5).

    12 BASs, DAG-like (the FTP-server connection BAS is shared by three
    gates).  Damage values are unitless composites from Dewri et al.; costs
    are attack durations in seconds.  Only the deterministic setting applies
    (the paper leaves probabilistic DAG analysis open).

    The cost-damage Pareto front of this decoration is exactly Fig. 6c:
    ``(250, 24), (568, 60), (976, 70.8), (1131, 75.8), (1281, 82.8)`` plus
    the empty attack.
    """
    builder = AttackTreeBuilder()
    builder.bas("b1", cost=100, label="internet connection to SMTP server")
    builder.bas("b2", cost=161, label="FTP rhost attack on SMTP server")
    builder.bas("b3", cost=147, label="RSH login to SMTP server")
    builder.bas("b4", cost=155, label="LICQ remote-to-user attack (terminal)")
    builder.bas("b5", cost=150, label='local buffer overflow at "at" daemon')
    builder.bas("b6", cost=100, label="internet connection to FTP server")
    builder.bas("b7", cost=155, label="attack via SSH")
    builder.bas("b8", cost=150, label="attack via FTP")
    builder.bas("b9", cost=161, label="FTP rhost attack on FTP server")
    builder.bas("b10", cost=147, label="RSH login to FTP server")
    builder.bas("b11", cost=155, label="LICQ remote-to-user attack (data server)")
    builder.bas("b12", cost=163, label="suid buffer overflow")

    # --- SMTP server / terminal chain -------------------------------------- #
    builder.and_gate("smtp_auth_bypassed", ["b2", "b3"],
                     label="SMTP authentication bypassed")
    builder.and_gate("user_access_smtp", ["b1", "smtp_auth_bypassed"], damage=10.8,
                     label="user access to SMTP server")
    builder.and_gate("user_access_terminal", ["user_access_smtp", "b4"], damage=5.0,
                     label="user access to terminal")
    builder.and_gate("root_access_terminal", ["user_access_terminal", "b5"], damage=7.0,
                     label="root access to terminal")
    # --- FTP server (b6 is shared: the DAG part) ---------------------------- #
    builder.and_gate("ftp_auth_bypassed", ["b6", "b9"],
                     label="FTP authentication bypassed")
    builder.and_gate("ssh_buffer_overflow", ["b6", "b7"], label="SSH buffer overflow")
    builder.and_gate("ftp_buffer_overflow", ["b6", "b8"], label="FTP buffer overflow")
    builder.or_gate("root_access_ftp", ["ssh_buffer_overflow", "ftp_buffer_overflow"],
                    damage=10.5, label="root access to FTP server")
    builder.and_gate("login_ftp_server", ["ftp_auth_bypassed", "b10"],
                     label="login to FTP server")
    builder.or_gate("user_access_ftp", ["login_ftp_server", "root_access_ftp"],
                    damage=13.5, label="user access to FTP server")
    # --- data server --------------------------------------------------------- #
    builder.or_gate("connect_data_server", ["user_access_ftp", "root_access_terminal"],
                    label="connect to data server")
    builder.and_gate("user_access_data_server", ["connect_data_server", "b11"],
                     label="user access to data server")
    builder.and_gate("root_access_data_server", ["user_access_data_server", "b12"],
                     damage=36.0, label="root access to data server")
    return builder.build_cd(root="root_access_data_server")


def example10_or_pair() -> CostDamageProbAT:
    """The two-BAS OR example of Example 10.

    ``w = OR(v1, v2)`` with ``c(v_i) = 1``, ``d(v_i) = 0``, ``p(v_i) = 0.5``,
    ``d(w) = 1``.  Deterministically activating one child suffices; in the
    probabilistic case also attempting the second child is Pareto optimal.
    """
    builder = AttackTreeBuilder()
    builder.bas("v1", cost=1, probability=0.5)
    builder.bas("v2", cost=1, probability=0.5)
    builder.or_gate("w", ["v1", "v2"], damage=1)
    return builder.build_cdp(root="w")


def knapsack_like_chain(n: int) -> CostDamageAT:
    """The exponential-Pareto-front construction of Example 6.

    ``R_T = OR(v_0, ..., v_{n-1})`` with ``c(v_i) = d(v_i) = 2^i`` and
    ``d(R_T) = 0``.  Every one of the ``2^n`` attacks is Pareto optimal,
    which shows the exponential lower bound of Theorem 5.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    builder = AttackTreeBuilder()
    names = []
    for index in range(n):
        name = f"v{index}"
        builder.bas(name, cost=float(2 ** index), damage=float(2 ** index))
        names.append(name)
    builder.or_gate("root", names, damage=0.0)
    return builder.build_cd(root="root")


# ---------------------------------------------------------------------------- #
# Table IV building blocks (synthetic stand-ins with matching size/shape)
# ---------------------------------------------------------------------------- #

_BLOCK_SPECS: Tuple[Tuple[str, int, bool], ...] = (
    # (name, |N|, treelike) as listed in Table IV of the paper.
    ("kumar2015_fig1", 12, False),
    ("kumar2015_fig8", 20, False),
    ("kumar2015_fig9", 12, False),
    ("arnold2015_fig1", 16, False),
    ("kordy2018_fig1", 15, True),
    ("arnold2014_fig3", 8, True),
    ("arnold2014_fig5", 21, True),
    ("arnold2014_fig7", 25, True),
    ("fraile2016_fig2", 20, True),
)


def _synthetic_block(name: str, size: int, treelike: bool, seed: int) -> AttackTree:
    """Generate a deterministic synthetic AT with the requested size/shape.

    The tree starts as a root gate over two BASs and grows by repeatedly
    expanding a random BAS into a gate with two fresh BAS children (each
    expansion adds two nodes) until at least ``size`` nodes exist.  Gate
    types alternate between OR and AND by depth parity of the expansion
    order.  For DAG-shaped blocks, one BAS is finally given a second parent.
    Generation is deterministic in ``seed`` so the catalogue is stable.
    """
    rng = random.Random(seed)
    counter = {"n": 0}

    def next_name(prefix: str) -> str:
        counter["n"] += 1
        return f"{name}_{prefix}{counter['n']}"

    root_name = f"{name}_g0"
    gate_children: Dict[str, List[str]] = {}
    gate_type: Dict[str, NodeType] = {}
    bas_names: List[str] = []

    def new_bas() -> str:
        bas = next_name("b")
        bas_names.append(bas)
        return bas

    gate_type[root_name] = rng.choice([NodeType.OR, NodeType.AND])
    gate_children[root_name] = [new_bas(), new_bas()]
    node_count = 3

    while node_count < size and bas_names:
        # Expand a random BAS into a gate with two fresh BAS children.
        victim = bas_names.pop(rng.randrange(len(bas_names)))
        gate_type[victim] = rng.choice([NodeType.OR, NodeType.AND])
        gate_children[victim] = [new_bas(), new_bas()]
        node_count += 2

    builder = AttackTreeBuilder()
    for bas in bas_names:
        builder.bas(bas)
    for gate, children in gate_children.items():
        builder.gate(gate, gate_type[gate], children)
    tree = builder.build_tree(root=root_name)

    if not treelike and len(bas_names) >= 2:
        # Give one BAS a second parent to make the block a genuine DAG.
        donor = bas_names[0]
        receiver_gate = next(
            (gate for gate, children in gate_children.items() if donor not in children),
            None,
        )
        if receiver_gate is not None:

            nodes = dict(tree.nodes)
            original = nodes[receiver_gate]
            nodes[receiver_gate] = original.with_children(
                original.children + (donor,)
            )
            tree = AttackTree(nodes.values(), root=root_name)
    return tree


def building_blocks(treelike_only: bool = False) -> List[AttackTree]:
    """Return the Table IV building-block ATs (synthetic stand-ins).

    Parameters
    ----------
    treelike_only:
        When ``True``, return only the treelike blocks — this is the subset
        the paper uses to generate its treelike random suite ``T_tree``.
    """
    blocks = []
    for index, (name, size, treelike) in enumerate(_BLOCK_SPECS):
        if treelike_only and not treelike:
            continue
        block = _synthetic_block(name, size, treelike, seed=1000 + index)
        blocks.append(block)
    return blocks
