"""Serialization of (decorated) attack trees.

Two formats are supported:

* **JSON** — a faithful round-trippable representation of
  :class:`~repro.attacktree.attributes.CostDamageProbAT` /
  :class:`~repro.attacktree.attributes.CostDamageAT` / bare trees.  This is
  the format consumed by the command-line interface and produced by the
  experiment harness when it archives generated workloads.
* **DOT (Graphviz)** — a write-only rendering for visual inspection of the
  case-study trees.

The JSON schema is intentionally simple::

    {
      "root": "ps",
      "nodes": [
        {"name": "ca", "type": "BAS", "cost": 1.0, "damage": 0.0,
         "probability": 0.2, "label": "cyberattack"},
        {"name": "ps", "type": "OR", "children": ["ca", "dr"],
         "damage": 200.0, "label": "production shutdown"}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Union

from .attributes import CostDamageAT, CostDamageProbAT
from .node import Node, NodeType
from .tree import AttackTree, AttackTreeError

__all__ = [
    "to_dict",
    "from_dict",
    "to_json",
    "from_json",
    "save_json",
    "load_json",
    "to_dot",
]

Decorated = Union[AttackTree, CostDamageAT, CostDamageProbAT]


def _components(model: Decorated):
    """Split any supported model into (tree, cost, damage, probability)."""
    if isinstance(model, CostDamageProbAT):
        return model.tree, model.cost, model.damage, model.probability
    if isinstance(model, CostDamageAT):
        return model.tree, model.cost, model.damage, None
    if isinstance(model, AttackTree):
        return model, None, None, None
    raise TypeError(f"cannot serialize object of type {type(model).__name__}")


def to_dict(model: Decorated) -> Dict[str, Any]:
    """Convert an attack tree (optionally decorated) to a JSON-ready dict."""
    tree, cost, damage, probability = _components(model)
    nodes: List[Dict[str, Any]] = []
    for name in tree.topological_order(reverse=True):
        node = tree.node(name)
        entry: Dict[str, Any] = {"name": name, "type": node.type.value}
        if node.label:
            entry["label"] = node.label
        if node.is_gate:
            entry["children"] = list(node.children)
        if cost is not None and node.is_bas:
            entry["cost"] = cost[name]
        if damage is not None and damage.get(name, 0.0) != 0.0:
            entry["damage"] = damage[name]
        if probability is not None and node.is_bas:
            entry["probability"] = probability[name]
        nodes.append(entry)
    return {"root": tree.root, "nodes": nodes}


def from_dict(data: Mapping[str, Any]) -> Decorated:
    """Reconstruct a tree / cd-AT / cdp-AT from :func:`to_dict` output.

    The returned type depends on which decorations are present: if any node
    has a ``probability`` a cdp-AT is returned; otherwise if any node has a
    ``cost`` or ``damage`` a cd-AT is returned; otherwise a bare tree.
    """
    if "nodes" not in data:
        raise AttackTreeError("serialized attack tree must contain a 'nodes' list")
    nodes: List[Node] = []
    cost: Dict[str, float] = {}
    damage: Dict[str, float] = {}
    probability: Dict[str, float] = {}
    has_cost = has_damage = has_probability = False

    for entry in data["nodes"]:
        try:
            name = entry["name"]
            type_ = NodeType(entry["type"])
        except (KeyError, ValueError) as exc:
            raise AttackTreeError(f"malformed node entry {entry!r}: {exc}") from exc
        children = tuple(entry.get("children", ()))
        nodes.append(Node(name=name, type=type_, children=children,
                          label=entry.get("label", "")))
        if "cost" in entry:
            cost[name] = float(entry["cost"])
            has_cost = True
        if "damage" in entry:
            damage[name] = float(entry["damage"])
            has_damage = True
        if "probability" in entry:
            probability[name] = float(entry["probability"])
            has_probability = True

    tree = AttackTree(nodes, root=data.get("root"))
    if has_probability:
        full_cost = {b: cost.get(b, 0.0) for b in tree.basic_attack_steps}
        full_prob = {b: probability.get(b, 1.0) for b in tree.basic_attack_steps}
        return CostDamageProbAT(tree, full_cost, damage, full_prob)
    if has_cost or has_damage:
        full_cost = {b: cost.get(b, 0.0) for b in tree.basic_attack_steps}
        return CostDamageAT(tree, full_cost, damage)
    return tree


def to_json(model: Decorated, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(model), indent=indent)


def from_json(text: str) -> Decorated:
    """Deserialize from a JSON string."""
    return from_dict(json.loads(text))


def save_json(model: Decorated, path: str, indent: int = 2) -> None:
    """Write the JSON serialization to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(model, indent=indent))


def load_json(path: str) -> Decorated:
    """Read a tree / cd-AT / cdp-AT from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return from_json(handle.read())


def to_dot(model: Decorated, graph_name: str = "attack_tree") -> str:
    """Render the tree in Graphviz DOT format.

    BASs are drawn as boxes with their cost (and probability), gates as
    ellipses labelled ``OR``/``AND``; nonzero damages are appended to labels.
    """
    tree, cost, damage, probability = _components(model)
    lines = [f"digraph {graph_name} {{", "  rankdir=TB;"]
    for name in tree.topological_order(reverse=True):
        node = tree.node(name)
        title = node.label or name
        extras: List[str] = []
        if damage is not None and damage.get(name, 0.0):
            extras.append(f"d={damage[name]:g}")
        if node.is_bas:
            if cost is not None:
                extras.append(f"c={cost[name]:g}")
            if probability is not None:
                extras.append(f"p={probability[name]:g}")
            shape = "box"
        else:
            title = f"{node.type.value}: {title}"
            shape = "ellipse"
        label = title if not extras else f"{title}\\n{', '.join(extras)}"
        lines.append(f'  "{name}" [shape={shape}, label="{label}"];')
    for parent, child in tree.edges():
        lines.append(f'  "{parent}" -> "{child}";')
    lines.append("}")
    return "\n".join(lines)
