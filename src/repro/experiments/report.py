"""Plain-text rendering of experiment results.

The paper reports its evaluation as figures (Pareto scatter plots, timing
curves) and tables.  Offline we regenerate the *data* behind each artifact
and render it as aligned plain-text tables — the same rows/series the paper
plots — so results can be diffed, archived, and quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Optional, Sequence, Tuple

from ..pareto.front import ParetoFront

__all__ = [
    "format_table",
    "format_pareto_front",
    "format_named_attacks",
    "format_timing_rows",
    "format_scaling_series",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table."""
    columns = len(headers)
    normalised = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in normalised:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]) if index < len(row) else 0)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in normalised:
        padded = list(row) + [""] * (columns - len(row))
        lines.append("  ".join(padded[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        return f"{value:g}"
    return str(value)


def format_pareto_front(front: ParetoFront, title: str = "Pareto front") -> str:
    """Render a Pareto front as the cost/damage/top/attack table of Fig. 6."""
    rows = []
    for index, point in enumerate(front, start=0):
        label = f"A{index}" if point.cost > 0 else "∅"
        reaches = "-" if point.reaches_root is None else ("y" if point.reaches_root else "n")
        attack = "" if point.attack is None else "{" + ", ".join(sorted(point.attack)) + "}"
        rows.append([label, point.cost, point.damage, reaches, attack])
    return format_table(["attack", "cost", "damage", "top", "BASs"], rows, title=title)


def format_named_attacks(
    entries: Sequence[Tuple[str, float, float, bool]], title: str = ""
) -> str:
    """Render (name, cost, damage, reaches-top) rows — the Fig. 6 side tables."""
    rows = [
        [name, cost, damage, "y" if reaches else "n"]
        for name, cost, damage, reaches in entries
    ]
    return format_table(["attack", "cost", "damage", "top"], rows, title=title)


def format_timing_rows(
    rows: Mapping[str, Mapping[str, Optional[float]]],
    title: str = "Computation time (seconds)",
) -> str:
    """Render a Table III-style timing matrix: row label → method → seconds."""
    methods = sorted({method for timings in rows.values() for method in timings})
    table_rows = []
    for label, timings in rows.items():
        row: List[object] = [label]
        for method in methods:
            value = timings.get(method)
            row.append("n/a" if value is None else f"{value:.4f}")
        table_rows.append(row)
    return format_table(["case"] + methods, table_rows, title=title)


def format_scaling_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    x_label: str = "|N| group",
    title: str = "",
) -> str:
    """Render Fig. 7-style series: method → [(group, mean seconds)]."""
    groups = sorted({x for points in series.values() for x, _ in points})
    headers = [x_label] + list(series)
    rows: List[List[object]] = []
    for group in groups:
        row: List[object] = [group]
        for points in series.values():
            match = next((y for x, y in points if x == group), None)
            row.append("n/a" if match is None else f"{match:.4f}")
        rows.append(row)
    return format_table(headers, rows, title=title)
