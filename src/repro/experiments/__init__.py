"""Experiment harness reproducing the paper's evaluation (Section X).

``casestudies``
    Figures 3 and 6a/6b/6c — Pareto fronts of the factory, panda-IoT and
    data-server ATs, compared against the published points.
``timing``
    Table III — wall-clock comparison of bottom-up, BILP and enumerative
    methods on the case studies with true and random decorations.
``random_suite``
    Figure 7 — scaling on randomly generated treelike and DAG suites.
``report``
    Plain-text rendering helpers shared by the above.
"""

from . import casestudies, random_suite, report, timing

__all__ = ["casestudies", "random_suite", "report", "timing"]
