"""Case-study experiments: Figures 3 and 6 of the paper.

Three experiments are reproduced here:

* **Fig. 3** — the cost-damage Pareto front of the factory running example;
* **Fig. 6a / 6b** — the deterministic and probabilistic fronts of the
  giant-panda IoT sensor network (treelike, bottom-up methods);
* **Fig. 6c** — the deterministic front of the data-server network
  (DAG-like, BILP method).

Each experiment returns both the computed front and the paper's published
front so callers (benchmarks, EXPERIMENTS.md generation, tests) can compare
them point by point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..attacktree import catalog
from ..core.bilp import pareto_front_bilp
from ..core.problems import Problem
from ..engine import AnalysisRequest, AnalysisSession
from ..pareto.front import ParetoFront
from .report import format_pareto_front


def _engine_front(model, problem: Problem, backend: str) -> ParetoFront:
    """Run one front computation through the engine with a pinned backend.

    The experiments pin the backend the paper used for each figure (rather
    than trusting auto-resolution) so a registry change can never silently
    alter what these reproductions measure.
    """
    session = AnalysisSession(model)
    return session.run(AnalysisRequest(problem, backend=backend)).front

__all__ = [
    "CaseStudyResult",
    "PAPER_FIG3_FRONT",
    "PAPER_FIG6A_FRONT",
    "PAPER_FIG6B_PREFIX",
    "PAPER_FIG6C_FRONT",
    "run_fig3_factory",
    "run_fig6a_panda_deterministic",
    "run_fig6b_panda_probabilistic",
    "run_fig6c_data_server",
    "run_all_case_studies",
]

#: Fig. 3 / Example 2: Pareto front of the factory AT.
PAPER_FIG3_FRONT: List[Tuple[float, float]] = [(0, 0), (1, 200), (3, 210), (5, 310)]

#: Fig. 6a: deterministic Pareto front of the panda IoT AT (nonzero attacks
#: A1–A8 plus the empty attack).
PAPER_FIG6A_FRONT: List[Tuple[float, float]] = [
    (0, 0), (3, 20), (4, 50), (7, 65), (11, 75), (13, 80), (17, 90), (22, 95), (30, 100),
]

#: Fig. 6b lists only the first five of 31 Pareto-optimal attacks; these are
#: the published (cost, expected damage) prefixes we check against.
PAPER_FIG6B_PREFIX: List[Tuple[float, float]] = [
    (3, 18.0), (7, 27.6), (11, 30.8), (13, 37.0), (16, 39.8),
]

#: Fig. 6c: deterministic Pareto front of the data-server AT.
PAPER_FIG6C_FRONT: List[Tuple[float, float]] = [
    (0, 0), (250, 24), (568, 60), (976, 70.8), (1131, 75.8), (1281, 82.8),
]


@dataclass(frozen=True)
class CaseStudyResult:
    """Outcome of one case-study experiment."""

    experiment: str
    front: ParetoFront
    paper_front: List[Tuple[float, float]]
    exact_match: bool

    def render(self) -> str:
        """Human-readable comparison used when archiving results."""
        lines = [format_pareto_front(self.front, title=f"{self.experiment}: computed front")]
        lines.append("")
        lines.append(f"paper front: {self.paper_front}")
        lines.append(f"exact match on published points: {self.exact_match}")
        return "\n".join(lines)


def _matches(front: ParetoFront, expected: List[Tuple[float, float]],
             prefix_only: bool = False, tolerance: float = 0.05) -> bool:
    """Check that the published points appear in the computed front.

    ``prefix_only`` restricts the check to the published points (the paper
    truncates some tables with "…"); otherwise the fronts must agree point
    for point.  Expected damages published with one decimal are compared
    with ``tolerance``.
    """
    values = front.values()
    if not prefix_only and len(values) != len(expected):
        return False
    for cost, damage in expected:
        close = [
            v for v in values
            if abs(v[0] - cost) <= 1e-6 and abs(v[1] - damage) <= tolerance
        ]
        if not close:
            return False
    return True


def run_fig3_factory() -> CaseStudyResult:
    """Reproduce Fig. 3: the CDPF of the factory example (bottom-up)."""
    front = _engine_front(catalog.factory(), Problem.CDPF, "bottom-up")
    return CaseStudyResult(
        experiment="Fig. 3 (factory, deterministic, bottom-up)",
        front=front,
        paper_front=PAPER_FIG3_FRONT,
        exact_match=_matches(front, PAPER_FIG3_FRONT),
    )


def run_fig6a_panda_deterministic() -> CaseStudyResult:
    """Reproduce Fig. 6a: the deterministic CDPF of the panda IoT AT."""
    model = catalog.panda_iot().deterministic()
    front = _engine_front(model, Problem.CDPF, "bottom-up")
    return CaseStudyResult(
        experiment="Fig. 6a (panda IoT, deterministic, bottom-up)",
        front=front,
        paper_front=PAPER_FIG6A_FRONT,
        exact_match=_matches(front, PAPER_FIG6A_FRONT),
    )


def run_fig6b_panda_probabilistic() -> CaseStudyResult:
    """Reproduce Fig. 6b: the cost-expected-damage front of the panda IoT AT.

    The paper publishes the first five of its 31 Pareto-optimal attacks; the
    comparison therefore only requires the published prefix to appear in the
    computed front (up to the 0.1 rounding used in the paper's table).
    """
    model = catalog.panda_iot()
    front = _engine_front(model, Problem.CEDPF, "bottom-up")
    return CaseStudyResult(
        experiment="Fig. 6b (panda IoT, probabilistic, bottom-up)",
        front=front,
        paper_front=PAPER_FIG6B_PREFIX,
        exact_match=_matches(front, PAPER_FIG6B_PREFIX, prefix_only=True),
    )


def run_fig6c_data_server(solver=None) -> CaseStudyResult:
    """Reproduce Fig. 6c: the deterministic CDPF of the data-server AT (BILP)."""
    model = catalog.data_server()
    if solver is not None:
        # A custom MILP solver bypasses the engine: the backend registry
        # has no per-request solver injection (yet), and this hook predates
        # the engine.
        front = pareto_front_bilp(model, solver=solver)
    else:
        front = _engine_front(model, Problem.CDPF, "bilp")
    return CaseStudyResult(
        experiment="Fig. 6c (data server, deterministic, BILP)",
        front=front,
        paper_front=PAPER_FIG6C_FRONT,
        exact_match=_matches(front, PAPER_FIG6C_FRONT),
    )


def run_all_case_studies() -> Dict[str, CaseStudyResult]:
    """Run every case-study experiment and return the results by key."""
    return {
        "fig3": run_fig3_factory(),
        "fig6a": run_fig6a_panda_deterministic(),
        "fig6b": run_fig6b_panda_probabilistic(),
        "fig6c": run_fig6c_data_server(),
    }
