"""Timing experiments: Table III of the paper.

Table III measures the wall-clock time of computing the (cost-)damage
Pareto fronts of the two case-study ATs with the bottom-up method, the BILP
method and the enumerative baseline — once for the "true" decorations and
once averaged over random decorations.

The enumerative baseline on the full panda AT takes hours (the paper reports
34 h / 49 h); :func:`run_table3` therefore takes an ``include_enumerative``
flag plus an ``enumerative_bas_limit`` so that quick runs (tests, CI,
benchmarks) can skip or bound it, while a full reproduction can switch it
on.  Absolute timings on this container differ from the paper's i7 machine;
the reproduced claim is the *ordering and orders of magnitude*:
bottom-up ≪ BILP ≪ enumerative.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..attacktree import catalog
from ..attacktree.attributes import CostDamageAT, CostDamageProbAT
from ..attacktree.random_gen import random_decoration
from ..bench.measure import TimingSample, measure
from ..core.problems import Problem
from ..engine import AnalysisRequest, run_request
from .report import format_timing_rows

__all__ = ["TimingSample", "Table3Row", "measure", "run_table3", "render_table3"]


@dataclass
class Table3Row:
    """One row of Table III: a case and its per-method timings."""

    label: str
    timings: Dict[str, Optional[TimingSample]] = field(default_factory=dict)

    def seconds(self) -> Dict[str, Optional[float]]:
        """Flatten to method → mean seconds (None when not applicable)."""
        return {
            method: (sample.mean_seconds if sample is not None else None)
            for method, sample in self.timings.items()
        }


def _measure_backend(
    model, problem: Problem, backend: str, repeats: int = 1
) -> TimingSample:
    """Time one engine request end-to-end (resolution included).

    All Table III timings now flow through the same
    :func:`repro.engine.run_request` path the benchmark harness uses, so
    experiment numbers and ``BENCH_*.json`` numbers are directly
    comparable.
    """
    request = AnalysisRequest(problem, backend=backend)
    return measure(lambda: run_request(model, request), repeats)


def _random_variants_panda(count: int, seed: int) -> List[CostDamageProbAT]:
    """Random c/d/p re-decorations of the panda AT (Section X.C)."""
    rng = random.Random(seed)
    base = catalog.panda_iot()
    variants = []
    for _ in range(count):
        cost, damage, probability = random_decoration(base.tree, rng)
        variants.append(CostDamageProbAT(base.tree, cost, damage, probability))
    return variants


def _random_variants_data_server(count: int, seed: int) -> List[CostDamageAT]:
    """Random c/d re-decorations of the data-server AT."""
    rng = random.Random(seed)
    base = catalog.data_server()
    variants = []
    for _ in range(count):
        cost, damage, _ = random_decoration(base.tree, rng)
        variants.append(CostDamageAT(base.tree, cost, damage))
    return variants


def run_table3(
    random_decorations: int = 5,
    include_enumerative: bool = False,
    enumerative_bas_limit: int = 14,
    seed: int = 42,
) -> List[Table3Row]:
    """Reproduce Table III (optionally scaled down).

    Parameters
    ----------
    random_decorations:
        Number of random c/d/p decorations to average over (the paper uses
        100; the default keeps quick runs quick).
    include_enumerative:
        Also time the enumerative baseline.  For the panda AT (22 BASs) a
        single enumerative run visits 4·10⁶ attacks and, in the
        probabilistic case, is far slower still; it is only attempted when
        the AT has at most ``enumerative_bas_limit`` BASs, otherwise the
        entry is reported as ``None`` (printed "n/a"), mirroring how the
        paper skips entries it could not run.
    enumerative_bas_limit:
        Upper bound on ``|B|`` for enumerative timing runs.
    seed:
        Seed for the random decorations.
    """
    rows: List[Table3Row] = []
    panda = catalog.panda_iot()
    panda_det = panda.deterministic()
    data_server = catalog.data_server()

    def enumerative_allowed(model) -> bool:
        return include_enumerative and len(model.tree.basic_attack_steps) <= enumerative_bas_limit

    # --- Fig. 4 (panda), deterministic, true values -------------------------- #
    row = Table3Row(label="Fig.4 deterministic (true c,d)")
    row.timings["bottom-up"] = _measure_backend(panda_det, Problem.CDPF, "bottom-up")
    row.timings["bilp"] = _measure_backend(panda_det, Problem.CDPF, "bilp")
    row.timings["enumerative"] = (
        _measure_backend(panda_det, Problem.CDPF, "enumerative")
        if enumerative_allowed(panda_det)
        else None
    )
    rows.append(row)

    # --- Fig. 4 (panda), probabilistic, true values --------------------------- #
    row = Table3Row(label="Fig.4 probabilistic (true c,d,p)")
    row.timings["bottom-up"] = _measure_backend(panda, Problem.CEDPF, "bottom-up")
    row.timings["bilp"] = None  # no BILP method in the probabilistic setting
    row.timings["enumerative"] = (
        _measure_backend(panda, Problem.CEDPF, "enumerative")
        if enumerative_allowed(panda)
        else None
    )
    rows.append(row)

    # --- Fig. 5 (data server), deterministic, true values --------------------- #
    row = Table3Row(label="Fig.5 deterministic (true c,d)")
    row.timings["bottom-up"] = None  # DAG-like: bottom-up does not apply
    row.timings["bilp"] = _measure_backend(data_server, Problem.CDPF, "bilp")
    row.timings["enumerative"] = (
        _measure_backend(data_server, Problem.CDPF, "enumerative")
        if enumerative_allowed(data_server)
        else None
    )
    rows.append(row)

    if random_decorations > 0:
        # --- random decorations, averaged ------------------------------------- #
        panda_variants = _random_variants_panda(random_decorations, seed)
        server_variants = _random_variants_data_server(random_decorations, seed + 1)

        det_durations = [
            _measure_backend(m.deterministic(), Problem.CDPF, "bottom-up").mean_seconds
            for m in panda_variants
        ]
        bilp_durations = [
            _measure_backend(m.deterministic(), Problem.CDPF, "bilp").mean_seconds
            for m in panda_variants
        ]
        row = Table3Row(label=f"Fig.4 deterministic (random c,d ×{random_decorations})")
        row.timings["bottom-up"] = TimingSample.from_durations(det_durations)
        row.timings["bilp"] = TimingSample.from_durations(bilp_durations)
        row.timings["enumerative"] = None
        rows.append(row)

        prob_durations = [
            _measure_backend(m, Problem.CEDPF, "bottom-up").mean_seconds
            for m in panda_variants
        ]
        row = Table3Row(label=f"Fig.4 probabilistic (random c,d,p ×{random_decorations})")
        row.timings["bottom-up"] = TimingSample.from_durations(prob_durations)
        row.timings["bilp"] = None
        row.timings["enumerative"] = None
        rows.append(row)

        server_durations = [
            _measure_backend(m, Problem.CDPF, "bilp").mean_seconds
            for m in server_variants
        ]
        server_enum = (
            [
                _measure_backend(m, Problem.CDPF, "enumerative").mean_seconds
                for m in server_variants
            ]
            if include_enumerative
            and len(data_server.tree.basic_attack_steps) <= enumerative_bas_limit
            else None
        )
        row = Table3Row(label=f"Fig.5 deterministic (random c,d ×{random_decorations})")
        row.timings["bottom-up"] = None
        row.timings["bilp"] = TimingSample.from_durations(server_durations)
        row.timings["enumerative"] = (
            TimingSample.from_durations(server_enum) if server_enum else None
        )
        rows.append(row)

    return rows


def render_table3(rows: List[Table3Row]) -> str:
    """Render Table III rows as aligned text."""
    return format_timing_rows(
        {row.label: row.seconds() for row in rows},
        title="Table III — C(E)DPF computation time (seconds)",
    )
