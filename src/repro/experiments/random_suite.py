"""Random-suite scaling experiments: Figure 7 of the paper.

The paper times its methods on two suites of 500 randomly generated ATs
(treelike ``T_tree`` and DAG-like ``T_DAG``), groups the results by
``⌊|N|/10⌋`` and plots mean computation time per group:

* Fig. 7a — ``T_tree``, deterministic: enumerative vs bottom-up vs BILP;
* Fig. 7b — ``T_tree``, probabilistic: enumerative vs bottom-up;
* Fig. 7c — ``T_DAG``, deterministic: enumerative vs BILP;
* Fig. 7d — overall min/mean/max statistics.

The same experiment is reproduced here, parameterised by suite size so that
quick runs finish in seconds while a full run matches the paper's 500-tree
suites.  The enumerative baseline is only executed on ATs with at most
``enumerative_bas_limit`` BASs (the paper likewise restricts it to the first
three size groups / ``N < 30``).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..attacktree.random_gen import RandomSuiteSpec, generate_suite
from ..core.problems import Problem
from ..engine import AnalysisRequest, run_request
from .report import format_scaling_series, format_table

__all__ = [
    "SuiteTiming",
    "SuiteSummary",
    "run_suite_timings",
    "group_means",
    "summarize",
    "render_fig7_series",
    "render_fig7d_statistics",
]


@dataclass(frozen=True)
class SuiteTiming:
    """Per-AT timing record."""

    nodes: int
    method: str
    seconds: float


@dataclass(frozen=True)
class SuiteSummary:
    """Min / mean / max seconds for one method over a suite (Fig. 7d)."""

    method: str
    minimum: float
    mean: float
    maximum: float
    samples: int


def _timed_backend(model, problem: Problem, backend: str) -> float:
    """Seconds one engine request spent inside the backend.

    Measurement flows through :func:`repro.engine.run_request`, the same
    path the benchmark harness records — the Fig. 7 numbers and the
    ``BENCH_*.json`` numbers now come from one clock.
    """
    result = run_request(model, AnalysisRequest(problem, backend=backend))
    return result.wall_time_seconds


def run_suite_timings(
    spec: RandomSuiteSpec,
    probabilistic: bool = False,
    include_enumerative: bool = True,
    enumerative_bas_limit: int = 12,
    include_bilp: bool = True,
) -> List[SuiteTiming]:
    """Time every applicable method on every AT of a random suite.

    Parameters
    ----------
    spec:
        Suite generation parameters (size, treelike-ness, seed).
    probabilistic:
        Time the probabilistic problems (Fig. 7b) instead of the
        deterministic ones (Fig. 7a / 7c).
    include_enumerative / enumerative_bas_limit:
        Whether and up to which number of BASs to run the exponential
        baseline.
    include_bilp:
        Whether to run the BILP method (not applicable in the probabilistic
        setting, ignored there).
    """
    suite = generate_suite(spec)
    records: List[SuiteTiming] = []
    for model in suite:
        nodes = len(model.tree)
        bas_count = len(model.tree.basic_attack_steps)
        if probabilistic:
            if model.tree.is_treelike:
                records.append(
                    SuiteTiming(nodes, "bottom-up",
                                _timed_backend(model, Problem.CEDPF, "bottom-up"))
                )
            if include_enumerative and bas_count <= enumerative_bas_limit:
                records.append(
                    SuiteTiming(nodes, "enumerative",
                                _timed_backend(model, Problem.CEDPF, "enumerative"))
                )
            continue
        deterministic = model.deterministic()
        if model.tree.is_treelike:
            records.append(
                SuiteTiming(nodes, "bottom-up",
                            _timed_backend(deterministic, Problem.CDPF, "bottom-up"))
            )
        if include_bilp:
            records.append(
                SuiteTiming(nodes, "bilp",
                            _timed_backend(deterministic, Problem.CDPF, "bilp"))
            )
        if include_enumerative and bas_count <= enumerative_bas_limit:
            records.append(
                SuiteTiming(nodes, "enumerative",
                            _timed_backend(deterministic, Problem.CDPF, "enumerative"))
            )
    return records


def group_means(
    records: Sequence[SuiteTiming], group_width: int = 10
) -> Dict[str, List[Tuple[int, float]]]:
    """Group records by ``⌊|N| / group_width⌋`` and average per method.

    Returns method → sorted list of (group index, mean seconds), i.e. the
    series plotted in Fig. 7a–c.
    """
    buckets: Dict[Tuple[str, int], List[float]] = {}
    for record in records:
        key = (record.method, record.nodes // group_width)
        buckets.setdefault(key, []).append(record.seconds)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for (method, group), values in buckets.items():
        series.setdefault(method, []).append((group, statistics.mean(values)))
    for method in series:
        series[method].sort()
    return series


def summarize(records: Sequence[SuiteTiming]) -> List[SuiteSummary]:
    """Fig. 7d: overall min/mean/max per method."""
    by_method: Dict[str, List[float]] = {}
    for record in records:
        by_method.setdefault(record.method, []).append(record.seconds)
    return [
        SuiteSummary(
            method=method,
            minimum=min(values),
            mean=statistics.mean(values),
            maximum=max(values),
            samples=len(values),
        )
        for method, values in sorted(by_method.items())
    ]


def render_fig7_series(
    records: Sequence[SuiteTiming], title: str, group_width: int = 10
) -> str:
    """Render the Fig. 7a/b/c series as a text table."""
    series = {
        method: [(float(group), mean) for group, mean in points]
        for method, points in group_means(records, group_width).items()
    }
    return format_scaling_series(series, x_label=f"|N|/{group_width}", title=title)


def render_fig7d_statistics(summaries: Sequence[SuiteSummary], title: str) -> str:
    """Render the Fig. 7d statistics table as text."""
    rows = [
        [s.method, f"{s.minimum:.4f}", f"{s.mean:.4f}", f"{s.maximum:.4f}", s.samples]
        for s in summaries
    ]
    return format_table(["method", "min (s)", "mean (s)", "max (s)", "ATs"], rows,
                        title=title)
