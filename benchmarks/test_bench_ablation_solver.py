"""A-ABL3: ablation of the single-objective ILP backend.

The paper drives its BILP formulation with Gurobi.  This reproduction ships
three backends: SciPy's HiGHS MILP (the default), the pure-Python
branch-and-bound with HiGHS LP relaxations, and the same branch-and-bound
with the from-scratch simplex.  All three solve the identical Theorem 6
programs to optimality; the benchmark quantifies the constant-factor price
of each level of "from scratch-ness" on the data-server case study.
"""

from repro.core.bilp import max_damage_given_cost_bilp, pareto_front_bilp
from repro.milp.branch_bound import BranchAndBoundSolver
from repro.milp.highs import HighsSolver

PAPER_FRONT = [(0, 0), (250, 24), (568, 60), (976, 70.8), (1131, 75.8), (1281, 82.8)]


def test_ablation_solver_highs_front(benchmark, data_server_model):
    front = benchmark(pareto_front_bilp, data_server_model, HighsSolver())
    assert front.values() == PAPER_FRONT


def test_ablation_solver_branch_bound_front(benchmark, data_server_model):
    front = benchmark(pareto_front_bilp, data_server_model, BranchAndBoundSolver())
    assert front.values() == PAPER_FRONT


def test_ablation_solver_pure_simplex_front(benchmark, data_server_model):
    front = benchmark.pedantic(
        pareto_front_bilp,
        args=(data_server_model, BranchAndBoundSolver(lp_engine="simplex")),
        rounds=1,
        iterations=1,
    )
    assert front.values() == PAPER_FRONT


def test_ablation_solver_highs_dgc(benchmark, data_server_model):
    value, _ = benchmark(max_damage_given_cost_bilp, data_server_model, 600, HighsSolver())
    assert value == 60.0


def test_ablation_solver_branch_bound_dgc(benchmark, data_server_model):
    value, _ = benchmark(
        max_damage_given_cost_bilp, data_server_model, 600, BranchAndBoundSolver()
    )
    assert value == 60.0
