"""E-FIG6C: deterministic cost-damage Pareto front of the data-server AT.

Fig. 6c of the paper: the AT is DAG-like, so the BILP method (Theorem 6)
applies; the front has 5 nonzero points and only the cheapest one fails to
reach the top node.  The enumerative baseline (2^12 attacks) is benchmarked
alongside, mirroring the Fig. 5 row of Table III.
"""

from repro.core.bilp import max_damage_given_cost_bilp, pareto_front_bilp
from repro.core.enumerative import enumerate_pareto_front
from repro.milp.branch_bound import BranchAndBoundSolver

PAPER_FRONT = [(0, 0), (250, 24), (568, 60), (976, 70.8), (1131, 75.8), (1281, 82.8)]


def test_fig6c_bilp_highs(benchmark, data_server_model):
    front = benchmark(pareto_front_bilp, data_server_model)
    assert front.values() == PAPER_FRONT


def test_fig6c_bilp_branch_and_bound(benchmark, data_server_model):
    solver = BranchAndBoundSolver()
    front = benchmark(pareto_front_bilp, data_server_model, solver)
    assert front.values() == PAPER_FRONT


def test_fig6c_enumerative(benchmark, data_server_model):
    front = benchmark(enumerate_pareto_front, data_server_model)
    assert front.values() == PAPER_FRONT


def test_fig6c_dgc_budget600(benchmark, data_server_model):
    """DgC on the DAG: with 600 seconds the best attack compromises the FTP
    server and the data server (damage 60)."""
    value, attack = benchmark(max_damage_given_cost_bilp, data_server_model, 600)
    assert value == 60.0
    assert attack == frozenset({"b6", "b8", "b11", "b12"})
