"""E-TAB3: the Table III timing comparison.

Table III times C(E)DPF computation on the two case-study ATs with the
bottom-up, BILP and enumerative methods, for the true decorations and for
random ones.  The paper's enumerative runs on the panda AT take tens of
hours; here the enumerative baseline is therefore benchmarked on the
data-server AT (2^12 attacks, the paper's 79.5 s row) and on a 14-BAS
truncation of the panda AT, which is enough to exhibit the orders-of-
magnitude gap.  Run the module's ``__main__`` to print a Table III-style
summary from the same measurements.
"""

import random

import pytest

from repro.attacktree.attributes import CostDamageAT, CostDamageProbAT
from repro.attacktree.random_gen import random_decoration
from repro.core.bilp import pareto_front_bilp
from repro.core.bottom_up import pareto_front_treelike
from repro.core.bottom_up_prob import pareto_front_treelike_probabilistic
from repro.core.enumerative import enumerate_pareto_front


# --------------------------------------------------------------------------- #
# Row 1 — Fig. 4 (panda), deterministic, true c/d
# --------------------------------------------------------------------------- #
def test_table3_panda_det_bottom_up(benchmark, panda_deterministic):
    front = benchmark(pareto_front_treelike, panda_deterministic)
    assert len(front) == 9


def test_table3_panda_det_bilp(benchmark, panda_deterministic):
    front = benchmark(pareto_front_bilp, panda_deterministic)
    assert len(front) == 9


# --------------------------------------------------------------------------- #
# Row 2 — Fig. 4 (panda), probabilistic, true c/d/p
# --------------------------------------------------------------------------- #
def test_table3_panda_prob_bottom_up(benchmark, panda_model):
    front = benchmark(pareto_front_treelike_probabilistic, panda_model)
    assert len(front) >= 25


# --------------------------------------------------------------------------- #
# Row 3 — Fig. 5 (data server), deterministic, true c/d
# --------------------------------------------------------------------------- #
def test_table3_server_det_bilp(benchmark, data_server_model):
    front = benchmark(pareto_front_bilp, data_server_model)
    assert len(front) == 6


def test_table3_server_det_enumerative(benchmark, data_server_model):
    front = benchmark(enumerate_pareto_front, data_server_model)
    assert len(front) == 6


# --------------------------------------------------------------------------- #
# Enumerative scaling proxy — the panda AT truncated to its eavesdropping
# sub-tree (16 BASs, 2^16 attacks).  The full 22-BAS enumeration is the
# paper's 34 h entry and is not run here; the truncation already shows the
# orders-of-magnitude gap against the bottom-up method on the same instance.
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def panda_truncated(panda_deterministic):
    sub = panda_deterministic.restricted_to("location_info_eavesdropped")
    assert len(sub.tree.basic_attack_steps) == 16
    return sub


def test_table3_panda_truncated_enumerative(benchmark, panda_truncated):
    front = benchmark.pedantic(
        enumerate_pareto_front, args=(panda_truncated,), rounds=1, iterations=1
    )
    assert len(front) >= 1


def test_table3_panda_truncated_bottom_up(benchmark, panda_truncated):
    front = benchmark(pareto_front_treelike, panda_truncated)
    assert len(front) >= 1


# --------------------------------------------------------------------------- #
# Random decorations (the right half of Table III), one seed per method
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def panda_random_decoration(panda_model):
    rng = random.Random(2023)
    cost, damage, probability = random_decoration(panda_model.tree, rng)
    return CostDamageProbAT(panda_model.tree, cost, damage, probability)


@pytest.fixture(scope="module")
def server_random_decoration(data_server_model):
    rng = random.Random(2024)
    cost, damage, _ = random_decoration(data_server_model.tree, rng)
    return CostDamageAT(data_server_model.tree, cost, damage)


def test_table3_panda_random_det_bottom_up(benchmark, panda_random_decoration):
    front = benchmark(pareto_front_treelike, panda_random_decoration.deterministic())
    assert len(front) >= 1


def test_table3_panda_random_det_bilp(benchmark, panda_random_decoration):
    front = benchmark(pareto_front_bilp, panda_random_decoration.deterministic())
    assert len(front) >= 1


def test_table3_panda_random_prob_bottom_up(benchmark, panda_random_decoration):
    front = benchmark(pareto_front_treelike_probabilistic, panda_random_decoration)
    assert len(front) >= 1


def test_table3_server_random_det_bilp(benchmark, server_random_decoration):
    front = benchmark(pareto_front_bilp, server_random_decoration)
    assert len(front) >= 1


if __name__ == "__main__":  # pragma: no cover - manual reporting entry point
    from repro.experiments.timing import render_table3, run_table3

    print(render_table3(run_table3(random_decorations=5, include_enumerative=True,
                                   enumerative_bas_limit=12)))
