"""E-FIG3: the Pareto front of the factory running example (Fig. 3).

Regenerates the CDPF of Fig. 1 / Example 2 with all three methods and
checks that each reproduces the published front
``{(0,0), (1,200), (3,210), (5,310)}``.
"""

from repro.core.bilp import pareto_front_bilp
from repro.core.bottom_up import pareto_front_treelike
from repro.core.enumerative import enumerate_pareto_front

PAPER_FRONT = [(0, 0), (1, 200), (3, 210), (5, 310)]


def test_fig3_bottom_up(benchmark, factory_model):
    front = benchmark(pareto_front_treelike, factory_model)
    assert front.values() == PAPER_FRONT


def test_fig3_bilp(benchmark, factory_model):
    front = benchmark(pareto_front_bilp, factory_model)
    assert front.values() == PAPER_FRONT


def test_fig3_enumerative(benchmark, factory_model):
    front = benchmark(enumerate_pareto_front, factory_model)
    assert front.values() == PAPER_FRONT
