"""E-FIG6A: deterministic cost-damage Pareto front of the panda IoT AT.

Fig. 6a of the paper: 8 nonzero Pareto-optimal attacks, anchored by
internal leakage (b18) and base-station compromise.  The bottom-up method
(Theorem 4) is the paper's method of choice for this treelike AT; the BILP
method is benchmarked on the same instance for comparison (Table III row 1).
"""

from repro.core.bilp import pareto_front_bilp
from repro.core.bottom_up import (
    max_damage_given_cost_treelike,
    pareto_front_treelike,
)

PAPER_FRONT = [
    (0, 0), (3, 20), (4, 50), (7, 65), (11, 75), (13, 80), (17, 90), (22, 95), (30, 100),
]


def test_fig6a_bottom_up(benchmark, panda_deterministic):
    front = benchmark(pareto_front_treelike, panda_deterministic)
    assert front.values() == PAPER_FRONT


def test_fig6a_bilp(benchmark, panda_deterministic):
    front = benchmark(pareto_front_bilp, panda_deterministic)
    assert front.values() == PAPER_FRONT


def test_fig6a_dgc_budget7(benchmark, panda_deterministic):
    """The DgC query used in the case-study discussion: budget 7 yields the
    combination of internal leakage and base-station compromise (damage 65)."""
    value, attack = benchmark(max_damage_given_cost_treelike, panda_deterministic, 7)
    assert value == 65
    assert "b18" in attack
