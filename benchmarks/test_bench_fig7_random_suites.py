"""E-FIG7A/B/C/D: scaling on randomly generated AT suites.

Fig. 7 of the paper times the methods on 500 random treelike and 500 random
DAG-like ATs with up to ~120 nodes, grouped by ⌊|N|/10⌋.  The benchmarks
below time each method over a scaled-down suite (ATs up to ~40 nodes, one
per size target) as a single aggregated workload; the module's ``__main__``
prints the Fig. 7a/7b/7c series and the Fig. 7d statistics table from the
same harness, and can be dialled up to the paper's full suite sizes.

The reproduced claims are the orderings: bottom-up ≪ BILP ≪ enumerative on
treelike ATs, BILP ≪ enumerative on DAGs, and probabilistic bottom-up slower
than deterministic bottom-up.
"""


from repro.core.bilp import pareto_front_bilp
from repro.core.bottom_up import pareto_front_treelike
from repro.core.bottom_up_prob import pareto_front_treelike_probabilistic
from repro.core.enumerative import enumerate_pareto_front


def _deterministic_models(suite):
    return [model.deterministic() for model in suite]


# --------------------------------------------------------------------------- #
# Fig. 7a — treelike, deterministic: Enum vs BU vs BILP
# --------------------------------------------------------------------------- #
def test_fig7a_tree_det_bottom_up(benchmark, small_tree_suite):
    models = _deterministic_models(small_tree_suite)

    def run():
        return [pareto_front_treelike(model) for model in models]

    fronts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(front.is_consistent() for front in fronts)


def test_fig7a_tree_det_bilp(benchmark, small_tree_suite):
    models = _deterministic_models(small_tree_suite)

    def run():
        return [pareto_front_bilp(model) for model in models]

    fronts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(front.is_consistent() for front in fronts)


def test_fig7a_tree_det_enumerative_small(benchmark, small_tree_suite):
    models = [
        model.deterministic()
        for model in small_tree_suite
        if len(model.tree.basic_attack_steps) <= 10
    ]

    def run():
        return [enumerate_pareto_front(model) for model in models]

    fronts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(fronts) == len(models)


# --------------------------------------------------------------------------- #
# Fig. 7b — treelike, probabilistic: BU (enumerative skipped above |B| = 10)
# --------------------------------------------------------------------------- #
def test_fig7b_tree_prob_bottom_up(benchmark, small_tree_suite):
    def run():
        return [pareto_front_treelike_probabilistic(model) for model in small_tree_suite]

    fronts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(front.is_consistent() for front in fronts)


# --------------------------------------------------------------------------- #
# Fig. 7c — DAG-like, deterministic: BILP (enumerative limited to small |B|)
# --------------------------------------------------------------------------- #
def test_fig7c_dag_det_bilp(benchmark, small_dag_suite):
    models = _deterministic_models(small_dag_suite)

    def run():
        return [pareto_front_bilp(model) for model in models]

    fronts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(front.is_consistent() for front in fronts)


def test_fig7c_dag_det_enumerative_small(benchmark, small_dag_suite):
    models = [
        model.deterministic()
        for model in small_dag_suite
        if len(model.tree.basic_attack_steps) <= 10
    ]

    def run():
        return [enumerate_pareto_front(model) for model in models]

    fronts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(fronts) == len(models)


if __name__ == "__main__":  # pragma: no cover - manual reporting entry point
    from repro.attacktree.random_gen import RandomSuiteSpec
    from repro.experiments.random_suite import (
        render_fig7_series,
        render_fig7d_statistics,
        run_suite_timings,
        summarize,
    )

    tree_spec = RandomSuiteSpec(max_target_size=100, trees_per_size=5, treelike=True)
    dag_spec = RandomSuiteSpec(max_target_size=100, trees_per_size=5, treelike=False)
    tree_det = run_suite_timings(tree_spec, probabilistic=False)
    tree_prob = run_suite_timings(tree_spec, probabilistic=True, include_bilp=False)
    dag_det = run_suite_timings(dag_spec, probabilistic=False)
    print(render_fig7_series(tree_det, "Fig. 7a — T_tree deterministic"))
    print()
    print(render_fig7_series(tree_prob, "Fig. 7b — T_tree probabilistic"))
    print()
    print(render_fig7_series(dag_det, "Fig. 7c — T_DAG deterministic"))
    print()
    print(render_fig7d_statistics(summarize(tree_det + tree_prob + dag_det),
                                  "Fig. 7d — overall statistics"))
