"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(Table III, Fig. 6, Fig. 7) or one of the ablations listed in DESIGN.md.
Benchmarks are sized so that the whole suite finishes in a few minutes;
each module documents how to scale it up to the paper's full workload.
"""

from __future__ import annotations


import pytest

from repro.attacktree import catalog
from repro.attacktree.random_gen import RandomSuiteSpec, generate_suite


@pytest.fixture(scope="session")
def factory_model():
    """Fig. 1 running example."""
    return catalog.factory()


@pytest.fixture(scope="session")
def panda_model():
    """Fig. 4 panda IoT cdp-AT (22 BASs, treelike)."""
    return catalog.panda_iot()


@pytest.fixture(scope="session")
def panda_deterministic(panda_model):
    """Deterministic projection of the panda model."""
    return panda_model.deterministic()


@pytest.fixture(scope="session")
def data_server_model():
    """Fig. 5 data-server cd-AT (12 BASs, DAG-like)."""
    return catalog.data_server()


@pytest.fixture(scope="session")
def small_tree_suite():
    """A scaled-down T_tree: treelike random ATs up to ~40 nodes."""
    spec = RandomSuiteSpec(max_target_size=40, trees_per_size=1, treelike=True, seed=71)
    return generate_suite(spec)


@pytest.fixture(scope="session")
def small_dag_suite():
    """A scaled-down T_DAG: DAG-like random ATs up to ~40 nodes."""
    spec = RandomSuiteSpec(max_target_size=40, trees_per_size=1, treelike=False, seed=72)
    return generate_suite(spec)
