"""A-ABL1: ablation of the third DTrip dimension (the reached-bit).

Section VI's key design decision is to propagate Pareto fronts in the
extended domain ``(cost, damage, reached)`` rather than ``(cost, damage)``.
The naive two-dimensional propagation is cheaper per node but *incorrect*
(Example 4): it discards partial attacks whose extra cost only pays off at
ancestors.  This ablation measures both the speed difference and the damage
lost by the naive variant on the panda case study and on random trees.
"""

from repro.attacktree.random_gen import RandomSuiteSpec, generate_suite
from repro.core.bottom_up import pareto_front_treelike

# The panda AT is a best case for the naive variant being *wrong but fast*:
# its base-station and password branches only carry damage above AND gates.


def test_ablation_triple_correct(benchmark, panda_deterministic):
    front = benchmark(pareto_front_treelike, panda_deterministic)
    assert front.max_damage_given_cost(30) == 100


def test_ablation_triple_naive_two_dimensional(benchmark, panda_deterministic):
    front = benchmark(
        pareto_front_treelike, panda_deterministic, float("inf"), False
    )
    # The naive propagation loses every attack that pays for an AND gate whose
    # damage sits above it: it cannot see base-station compromise (45+5),
    # message deciphering (10), node compromise (5) or group eavesdropping (5).
    assert front.max_damage_given_cost(30) < 100


def test_ablation_triple_damage_loss_on_random_suite(benchmark, panda_deterministic):
    """Quantify the correctness gap: the naive variant must never report
    *more* damage than the correct one (its candidates are genuine attacks),
    and on the panda case study it strictly underestimates."""
    suite = [
        model.deterministic()
        for model in generate_suite(
            RandomSuiteSpec(max_target_size=25, trees_per_size=1, treelike=True, seed=5)
        )
    ] + [panda_deterministic]

    def run():
        losses = []
        for model in suite:
            budget = sum(model.cost.values())
            correct = pareto_front_treelike(model).max_damage_given_cost(budget)
            naive = pareto_front_treelike(
                model, track_reachability=False
            ).max_damage_given_cost(budget)
            assert naive <= correct + 1e-9
            losses.append(correct - naive)
        return losses

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    assert losses[-1] > 0  # the panda AT strictly loses damage naively
