"""A-ABL4: exact methods vs NSGA-II approximation (the paper's future work).

The conclusion of the paper asks "to what extent the performance gain (if
any) from using genetic algorithms comes at an accuracy cost".  This
benchmark answers it on the panda case study: the exact bottom-up front
versus NSGA-II at two effort levels, with the recovered hypervolume as the
accuracy metric.
"""

from repro.core.bottom_up import pareto_front_treelike
from repro.extensions.genetic import GeneticConfig, approximate_pareto_front


def _hypervolume_ratio(approximate, exact):
    bound = max(exact.costs())
    return approximate.hypervolume(bound) / exact.hypervolume(bound)


def test_ablation_genetic_exact_reference(benchmark, panda_deterministic):
    front = benchmark(pareto_front_treelike, panda_deterministic)
    assert front.max_damage_given_cost(30) == 100


def test_ablation_genetic_small_budget(benchmark, panda_deterministic):
    exact = pareto_front_treelike(panda_deterministic)
    config = GeneticConfig(population_size=32, generations=20, seed=11)
    approximate = benchmark(approximate_pareto_front, panda_deterministic, config)
    ratio = _hypervolume_ratio(approximate, exact)
    assert 0.5 <= ratio <= 1.0 + 1e-9  # approximation never exceeds the exact front


def test_ablation_genetic_large_budget(benchmark, panda_deterministic):
    exact = pareto_front_treelike(panda_deterministic)
    config = GeneticConfig(population_size=64, generations=60, seed=11)
    approximate = benchmark.pedantic(
        approximate_pareto_front, args=(panda_deterministic, config), rounds=1, iterations=1
    )
    ratio = _hypervolume_ratio(approximate, exact)
    assert ratio >= 0.85
