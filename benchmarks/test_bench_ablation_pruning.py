"""A-ABL2: ablation of cost-budget pruning in the bottom-up DgC solver.

Section VI.B explains that DgC can prune partial attacks exceeding the
budget *during* the bottom-up pass (the ``min_U`` filter), whereas CgD
cannot prune at all and must compute the full front.  This ablation
quantifies the speedup of budget pruning by solving DgC on the panda AT

* with the budget threaded through the recursion (the paper's approach), and
* by first computing the unconstrained front and then querying it
  (Equation (1) — correct but slower when the budget is small).
"""

import pytest

from repro.core.bottom_up import (
    max_damage_given_cost_treelike,
    pareto_front_treelike,
)
from repro.core.bottom_up_prob import (
    max_expected_damage_given_cost_treelike,
    pareto_front_treelike_probabilistic,
)

BUDGET = 7  # the case-study budget: internal leakage + base-station compromise


def test_ablation_dgc_with_budget_pruning(benchmark, panda_deterministic):
    value, _ = benchmark(max_damage_given_cost_treelike, panda_deterministic, BUDGET)
    assert value == 65


def test_ablation_dgc_via_full_front(benchmark, panda_deterministic):
    def run():
        return pareto_front_treelike(panda_deterministic).max_damage_given_cost(BUDGET)

    value = benchmark(run)
    assert value == 65


def test_ablation_edgc_with_budget_pruning(benchmark, panda_model):
    value, _ = benchmark(max_expected_damage_given_cost_treelike, panda_model, BUDGET)
    assert value == pytest.approx(27.555)


def test_ablation_edgc_via_full_front(benchmark, panda_model):
    def run():
        return pareto_front_treelike_probabilistic(panda_model).max_damage_given_cost(BUDGET)

    value = benchmark(run)
    assert value == pytest.approx(27.555)
