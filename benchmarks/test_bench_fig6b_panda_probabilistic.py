"""E-FIG6B: cost-expected-damage Pareto front of the panda IoT AT.

Fig. 6b of the paper: the probabilistic front has ~31 Pareto-optimal
attacks (vs 8 deterministically); its published prefix is
(3, 18.0), (7, 27.6), (11, 30.8), (13, 37.0), (16, 39.8) and {b18} appears
in every optimal attack.
"""

import pytest

from repro.core.bottom_up_prob import (
    max_expected_damage_given_cost_treelike,
    pareto_front_treelike_probabilistic,
)

PAPER_PREFIX = [(3, 18.0), (7, 27.6), (11, 30.8), (13, 37.0), (16, 39.8)]


def test_fig6b_bottom_up(benchmark, panda_model):
    front = benchmark(pareto_front_treelike_probabilistic, panda_model)
    rounded = {(round(c), round(d, 1)) for c, d in front.values()}
    for point in PAPER_PREFIX:
        assert point in rounded
    assert len(front) >= 25  # the paper reports 31 Pareto-optimal attacks


def test_fig6b_edgc_budget3(benchmark, panda_model):
    """EDgC with budget 3: internal leakage alone, expected damage 18.0."""
    value, attack = benchmark(max_expected_damage_given_cost_treelike, panda_model, 3)
    assert value == pytest.approx(18.0)
    assert attack == frozenset({"b18"})
