"""A-ABL5: probabilistic-DAG methods (the paper's open problem).

Compares the three ways this library attacks the open problem on a
probabilistic version of the Fig. 5 data-server DAG (uniform success
probability 0.8 on all 12 BASs):

* exact CEDPF via actualization enumeration (doubly exponential),
  restricted to the 5-BAS FTP sub-DAG to stay tractable;
* exact CEDPF via multilinear reach polynomials (the conclusion's
  "polynomial ring" idea) on the full 12-BAS DAG;
* Monte-Carlo estimation of a single attack's expected damage.

All three agree where they overlap; the benchmark quantifies the speed
difference that makes the polynomial method the practical choice.
"""

import pytest

from repro.attacktree.catalog import data_server
from repro.extensions.polynomial import (
    expected_damage_polynomial,
    pareto_front_probabilistic_polynomial,
    reach_polynomials,
)
from repro.extensions.prob_dag import pareto_front_probabilistic_exact
from repro.probability.montecarlo import estimate_expected_damage


@pytest.fixture(scope="module")
def probabilistic_server():
    base = data_server()
    return base.with_probabilities({b: 0.8 for b in base.tree.basic_attack_steps})


@pytest.fixture(scope="module")
def probabilistic_server_subdag(probabilistic_server):
    """The FTP-server sub-DAG (5 BASs, containing the shared connection step)
    where the doubly exponential exact enumeration is still feasible."""
    sub = probabilistic_server.restricted_to("user_access_ftp")
    assert len(sub.tree.basic_attack_steps) == 5
    assert not sub.tree.is_treelike
    return sub


def test_prob_dag_polynomial_full_front(benchmark, probabilistic_server):
    front = benchmark(pareto_front_probabilistic_polynomial, probabilistic_server)
    assert front.is_consistent()
    assert len(front) >= 5


def test_prob_dag_polynomial_subdag_front(benchmark, probabilistic_server_subdag):
    front = benchmark(pareto_front_probabilistic_polynomial, probabilistic_server_subdag)
    assert front.is_consistent()


def test_prob_dag_enumerative_subdag_front(benchmark, probabilistic_server_subdag):
    front = benchmark.pedantic(
        pareto_front_probabilistic_exact, args=(probabilistic_server_subdag,),
        rounds=1, iterations=1,
    )
    fast = pareto_front_probabilistic_polynomial(probabilistic_server_subdag)
    assert len(front) == len(fast)
    for a, b in zip(front.values(), fast.values()):
        assert a == pytest.approx(b)


def test_prob_dag_single_attack_polynomial(benchmark, probabilistic_server):
    polynomials = reach_polynomials(probabilistic_server.tree)
    attack = frozenset({"b6", "b8", "b11", "b12"})
    value = benchmark(
        expected_damage_polynomial, probabilistic_server, attack, polynomials
    )
    assert 0 < value < 60


def test_prob_dag_single_attack_montecarlo(benchmark, probabilistic_server):
    attack = frozenset({"b6", "b8", "b11", "b12"})
    exact = expected_damage_polynomial(probabilistic_server, attack)
    estimate = benchmark.pedantic(
        estimate_expected_damage, args=(probabilistic_server, attack, 5000),
        rounds=1, iterations=1,
    )
    assert estimate.within(exact, z=4.0)
